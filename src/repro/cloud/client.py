"""Resilient cloud-call path: deadlines, retries, circuit breaker.

:class:`ResilientCloudClient` sits between a runtime loop and any
``handle_frame`` endpoint (a :class:`~repro.cloud.server.CloudServer`,
or a :class:`~repro.faults.injector.FaultInjector` wrapping one) and
turns raw failures into a bounded, observable outcome the loop can
degrade on instead of crashing:

* **Per-call deadline** — a call whose simulated Eq. 4 latency exceeds
  ``deadline_s`` is abandoned as a timeout (the edge cannot block the
  1 s loop on a 10 s download).
* **Payload validation** — a result whose matches were dropped in
  transit (empty while the search admitted candidates) or corrupted
  (offsets past the end of their slices) is rejected like any other
  failed attempt.
* **Bounded retries** — up to ``max_retries`` re-attempts with seeded
  exponential backoff plus jitter; all randomness comes from one
  ``numpy.random.Generator``, so a session replays bit-identically.
* **Circuit breaker** — ``breaker_failure_threshold`` consecutive
  failed calls open the breaker: further calls fail fast (no attempt)
  until ``breaker_cooldown_s`` of simulated time passes, then one
  half-open probe decides between closing and re-opening.

Failed time is *simulated*: the outcome's ``penalty_s`` is how much
simulated wall-clock the failed attempts and backoffs consumed, which
the batch framework adds to the dispatch timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro import obs
from repro.errors import CloudUnavailableError, EMAPError, FrameworkError, PayloadError

if TYPE_CHECKING:  # runtime/signal types are only type annotations here
    from repro.cloud.results import SearchResult
    from repro.runtime.timing import TimingBreakdown, TimingModel
    from repro.signals.types import Frame


class CloudEndpoint(Protocol):
    """The server surface the client (and the fault injector) wraps.

    Satisfied by :class:`~repro.cloud.server.CloudServer` and by
    :class:`~repro.faults.injector.FaultInjector` — chaos proxies stack
    under the resilient client transparently.
    """

    @property
    def timing(self) -> TimingModel:
        ...

    def handle_frame(
        self, frame: Frame | np.ndarray
    ) -> tuple[SearchResult, TimingBreakdown]:
        ...


class BreakerState(Enum):
    """Circuit-breaker states (gauge values in parentheses)."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


#: Gauge encoding for ``cloud.client.breaker_state``.
BREAKER_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient call path.

    The default deadline comfortably admits the paper's ~3 s Δinitial
    while rejecting a 50× spike on the 200 ms download budget; backoff
    is exponential (``base · factor^attempt``) with multiplicative
    jitter drawn uniformly from ``[1, 1 + jitter]``.
    """

    deadline_s: float = 10.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 10.0
    validate_payloads: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise FrameworkError(f"deadline must be positive, got {self.deadline_s}")
        if self.max_retries < 0:
            raise FrameworkError(
                f"max retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise FrameworkError(
                f"backoff base must be non-negative, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise FrameworkError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_jitter < 0:
            raise FrameworkError(
                f"backoff jitter must be non-negative, got {self.backoff_jitter}"
            )
        if self.breaker_failure_threshold < 1:
            raise FrameworkError(
                "breaker failure threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise FrameworkError(
                f"breaker cooldown must be non-negative, got {self.breaker_cooldown_s}"
            )
        if self.seed < 0:
            raise FrameworkError(f"seed must be non-negative, got {self.seed}")


@dataclass(frozen=True)
class CloudCallOutcome:
    """What one resilient call produced (success or classified failure)."""

    ok: bool
    result: SearchResult | None
    breakdown: TimingBreakdown | None
    attempts: int
    retries: int
    #: Simulated seconds the failed attempts + backoffs consumed before
    #: the successful attempt started (0 on a clean first try).
    penalty_s: float
    failure: str | None
    breaker_state: BreakerState
    #: Breaker transitions this call caused, in order (event-log fodder).
    transitions: tuple[BreakerState, ...] = ()


def validate_payload(result: SearchResult, frame_samples: int) -> None:
    """Reject a dropped or corrupted search-result payload.

    A payload is *dropped* when the matches list is empty although the
    search statistics say candidates were admitted, and *corrupt* when
    any match carries a non-finite ω or an offset no valid sliding
    window could produce (``offset + frame > len(slice)``).
    """
    if not result.matches:
        if result.candidates_above_threshold > 0:
            raise PayloadError(
                "payload dropped: search admitted "
                f"{result.candidates_above_threshold} candidates but zero "
                "matches arrived"
            )
        return
    for match in result.matches:
        if not math.isfinite(match.omega):
            raise PayloadError(f"corrupt payload: non-finite omega {match.omega}")
        if match.offset + frame_samples > len(match.sig_slice):
            raise PayloadError(
                f"corrupt payload: offset {match.offset} leaves no room for a "
                f"{frame_samples}-sample window in a {len(match.sig_slice)}-sample "
                "slice"
            )


class ResilientCloudClient:
    """Deadline + retry + circuit-breaker wrapper over a cloud endpoint."""

    def __init__(
        self, endpoint: CloudEndpoint, config: ResilienceConfig | None = None
    ) -> None:
        self.endpoint = endpoint
        self.config = config or ResilienceConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        self.calls = 0
        self.successes = 0
        self.failures = 0
        self.retries_total = 0
        self.timeouts_total = 0
        self.fast_failures = 0

    @property
    def breaker_state(self) -> BreakerState:
        return self._state

    def reset(self) -> None:
        """Fresh session: close the breaker, reseed the backoff RNG."""
        self._rng = np.random.default_rng(self.config.seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0

    def call(self, frame: Frame | np.ndarray, now_s: float) -> CloudCallOutcome:
        """One resilient cloud call at simulated instant ``now_s``."""
        self.calls += 1
        transitions: list[BreakerState] = []

        if self._state is BreakerState.OPEN:
            if now_s - self._opened_at_s >= self.config.breaker_cooldown_s:
                self._transition(BreakerState.HALF_OPEN, transitions)
            else:
                self.fast_failures += 1
                self._record_counter("cloud.client.fast_fails")
                return self._failure_outcome(
                    attempts=0, penalty_s=0.0, failure="breaker_open",
                    transitions=transitions,
                )

        # A half-open breaker grants exactly one probe attempt.
        budget = 1 if self._state is BreakerState.HALF_OPEN else self.config.max_retries + 1
        frame_samples = self._frame_samples(frame)
        penalty_s = 0.0
        failure: str | None = None

        for attempt in range(budget):
            if attempt > 0:
                backoff = self._backoff_s(attempt - 1)
                penalty_s += backoff
                self.retries_total += 1
                self._record_counter("cloud.client.retries")
            try:
                result, breakdown = self.endpoint.handle_frame(frame)
            except EMAPError as error:
                failure = self._classify(error)
                continue
            if breakdown.initial_s > self.config.deadline_s:
                failure = "timeout"
                penalty_s += self.config.deadline_s
                self.timeouts_total += 1
                self._record_counter("cloud.client.timeouts")
                continue
            if self.config.validate_payloads:
                try:
                    validate_payload(result, frame_samples)
                except PayloadError as error:
                    failure = self._classify(error)
                    penalty_s += breakdown.initial_s
                    continue
            # Success: close the breaker and hand the result back.
            self.successes += 1
            if self._state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED, transitions)
            self._consecutive_failures = 0
            return CloudCallOutcome(
                ok=True,
                result=result,
                breakdown=breakdown,
                attempts=attempt + 1,
                retries=attempt,
                penalty_s=penalty_s,
                failure=None,
                breaker_state=self._state,
                transitions=tuple(transitions),
            )

        # Every attempt failed: drive the breaker state machine.
        if self._state is BreakerState.HALF_OPEN:
            self._open(now_s, transitions)
        else:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.breaker_failure_threshold:
                self._open(now_s, transitions)
        return self._failure_outcome(
            attempts=budget, penalty_s=penalty_s, failure=failure,
            transitions=transitions,
        )

    # -- internals -----------------------------------------------------

    def _failure_outcome(
        self,
        attempts: int,
        penalty_s: float,
        failure: str | None,
        transitions: list[BreakerState],
    ) -> CloudCallOutcome:
        self.failures += 1
        self._record_counter("cloud.client.failures")
        return CloudCallOutcome(
            ok=False,
            result=None,
            breakdown=None,
            attempts=attempts,
            retries=max(0, attempts - 1),
            penalty_s=penalty_s,
            failure=failure,
            breaker_state=self._state,
            transitions=tuple(transitions),
        )

    def _backoff_s(self, retry_index: int) -> float:
        """Seeded exponential backoff with multiplicative jitter."""
        base = self.config.backoff_base_s * self.config.backoff_factor**retry_index
        jitter = 1.0 + self.config.backoff_jitter * float(self._rng.uniform())
        return base * jitter

    def _open(self, now_s: float, transitions: list[BreakerState]) -> None:
        self._opened_at_s = now_s
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN, transitions)

    def _transition(
        self, state: BreakerState, transitions: list[BreakerState]
    ) -> None:
        if state is self._state:
            return
        self._state = state
        transitions.append(state)
        registry = obs.metrics()
        if registry.enabled:
            registry.set_gauge("cloud.client.breaker_state", BREAKER_GAUGE[state])

    @staticmethod
    def _classify(error: EMAPError) -> str:
        if isinstance(error, CloudUnavailableError):
            return "unreachable"
        if isinstance(error, PayloadError):
            return "payload"
        return "search_error"

    @staticmethod
    def _frame_samples(frame: Frame | np.ndarray) -> int:
        data = getattr(frame, "data", frame)
        return int(np.asarray(data).size)

    @staticmethod
    def _record_counter(name: str) -> None:
        registry = obs.metrics()
        if registry.enabled:
            registry.inc(name)
