"""Resilient cloud-call path: deadlines, retries, circuit breaker.

:class:`ResilientCloudClient` sits between a runtime loop and any
``handle_frame`` endpoint (a :class:`~repro.cloud.server.CloudServer`,
or a :class:`~repro.faults.injector.FaultInjector` wrapping one) and
turns raw failures into a bounded, observable outcome the loop can
degrade on instead of crashing:

* **Per-call deadline** — a call whose simulated Eq. 4 latency exceeds
  ``deadline_s`` is abandoned as a timeout (the edge cannot block the
  1 s loop on a 10 s download).
* **Payload validation** — a result whose matches were dropped in
  transit (empty while the search admitted candidates) or corrupted
  (offsets past the end of their slices) is rejected like any other
  failed attempt.
* **Bounded retries** — up to ``max_retries`` re-attempts with seeded
  exponential backoff plus jitter; all randomness comes from one
  ``numpy.random.Generator``, so a session replays bit-identically.
* **Circuit breaker** — ``breaker_failure_threshold`` consecutive
  failed calls open the breaker: further calls fail fast (no attempt)
  until ``breaker_cooldown_s`` of simulated time passes, then one
  half-open probe decides between closing and re-opening.

Failed time is *simulated*: the outcome's ``penalty_s`` is how much
simulated wall-clock the failed attempts and backoffs consumed, which
the batch framework adds to the dispatch timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro import obs
from repro.errors import CloudUnavailableError, EMAPError, FrameworkError, PayloadError

if TYPE_CHECKING:  # runtime/signal types are only type annotations here
    from repro.cloud.results import SearchResult
    from repro.runtime.timing import TimingBreakdown, TimingModel
    from repro.signals.types import Frame


class CloudEndpoint(Protocol):
    """The server surface the client (and the fault injector) wraps.

    Satisfied by :class:`~repro.cloud.server.CloudServer` and by
    :class:`~repro.faults.injector.FaultInjector` — chaos proxies stack
    under the resilient client transparently.
    """

    @property
    def timing(self) -> TimingModel:
        ...

    def handle_frame(
        self, frame: Frame | np.ndarray
    ) -> tuple[SearchResult, TimingBreakdown]:
        ...


class BreakerState(Enum):
    """Circuit-breaker states (gauge values in parentheses)."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"


#: Gauge encoding for ``cloud.client.breaker_state``.
BREAKER_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient call path.

    The default deadline comfortably admits the paper's ~3 s Δinitial
    while rejecting a 50× spike on the 200 ms download budget; backoff
    is exponential (``base · factor^attempt``) with multiplicative
    jitter drawn uniformly from ``[1, 1 + jitter]``.
    """

    deadline_s: float = 10.0
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 10.0
    validate_payloads: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise FrameworkError(f"deadline must be positive, got {self.deadline_s}")
        if self.max_retries < 0:
            raise FrameworkError(
                f"max retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise FrameworkError(
                f"backoff base must be non-negative, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise FrameworkError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_jitter < 0:
            raise FrameworkError(
                f"backoff jitter must be non-negative, got {self.backoff_jitter}"
            )
        if self.breaker_failure_threshold < 1:
            raise FrameworkError(
                "breaker failure threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise FrameworkError(
                f"breaker cooldown must be non-negative, got {self.breaker_cooldown_s}"
            )
        if self.seed < 0:
            raise FrameworkError(f"seed must be non-negative, got {self.seed}")


@dataclass(frozen=True)
class CloudCallOutcome:
    """What one resilient call produced (success or classified failure)."""

    ok: bool
    result: SearchResult | None
    breakdown: TimingBreakdown | None
    attempts: int
    retries: int
    #: Simulated seconds the failed attempts + backoffs consumed before
    #: the successful attempt started (0 on a clean first try).
    penalty_s: float
    failure: str | None
    breaker_state: BreakerState
    #: Breaker transitions this call caused, in order (event-log fodder).
    transitions: tuple[BreakerState, ...] = ()


def validate_payload(result: SearchResult, frame_samples: int) -> None:
    """Reject a dropped or corrupted search-result payload.

    A payload is *dropped* when the matches list is empty although the
    search statistics say candidates were admitted, and *corrupt* when
    any match carries a non-finite ω or an offset no valid sliding
    window could produce (``offset + frame > len(slice)``).
    """
    if not result.matches:
        if result.candidates_above_threshold > 0:
            raise PayloadError(
                "payload dropped: search admitted "
                f"{result.candidates_above_threshold} candidates but zero "
                "matches arrived"
            )
        return
    for match in result.matches:
        if not math.isfinite(match.omega):
            raise PayloadError(f"corrupt payload: non-finite omega {match.omega}")
        if match.offset + frame_samples > len(match.sig_slice):
            raise PayloadError(
                f"corrupt payload: offset {match.offset} leaves no room for a "
                f"{frame_samples}-sample window in a {len(match.sig_slice)}-sample "
                "slice"
            )


class ResilientCallDriver:
    """Sans-I/O state machine for ONE resilient cloud call.

    Owns every semantic of the call — breaker gating, retry budget,
    backoff penalties, deadline and payload checks, breaker
    transitions — while leaving the *transport* (how an attempt
    actually reaches the endpoint) to the caller.  The synchronous
    :meth:`ResilientCloudClient.call` and the serving gateway's async
    per-tenant path both drive this exact machine, which is what keeps
    their deadline/retry/circuit-breaker behaviour identical.

    Protocol::

        driver = ResilientCallDriver(client, frame, now_s)
        while driver.begin_attempt():
            try:
                result, breakdown = <one endpoint attempt>
            except EMAPError as error:
                driver.record_error(error)
            else:
                driver.record_response(result, breakdown)
        outcome = driver.outcome

    ``begin_attempt`` returns ``False`` once the call has concluded —
    either a success was recorded, the breaker fast-failed the call, or
    the attempt budget ran dry (concluding drives the breaker state
    machine exactly as the previous inline loop did).
    """

    def __init__(
        self,
        client: ResilientCloudClient,
        frame: Frame | np.ndarray,
        now_s: float,
    ) -> None:
        self._client = client
        self._now_s = now_s
        self._frame_samples = client._frame_samples(frame)
        self._transitions: list[BreakerState] = []
        self._penalty_s = 0.0
        self._failure: str | None = None
        self._attempts_started = 0
        self.outcome: CloudCallOutcome | None = None

        client.calls += 1
        if client._state is BreakerState.OPEN:
            if now_s - client._opened_at_s >= client.config.breaker_cooldown_s:
                client._transition(BreakerState.HALF_OPEN, self._transitions)
            else:
                client.fast_failures += 1
                client._record_counter("cloud.client.fast_fails")
                self.outcome = client._failure_outcome(
                    attempts=0, penalty_s=0.0, failure="breaker_open",
                    transitions=self._transitions,
                )
        # A half-open breaker grants exactly one probe attempt.
        self._budget = (
            1
            if client._state is BreakerState.HALF_OPEN
            else client.config.max_retries + 1
        )

    def begin_attempt(self) -> bool:
        """Start the next attempt; ``False`` once the call concluded.

        Starting a retry (any attempt after the first) draws its seeded
        backoff and adds it to the simulated penalty.  When the budget
        is exhausted this concludes the call as a failure, driving the
        breaker exactly like the synchronous path always has.
        """
        if self.outcome is not None:
            return False
        if self._attempts_started >= self._budget:
            self._conclude_failure()
            return False
        if self._attempts_started > 0:
            client = self._client
            self._penalty_s += client._backoff_s(self._attempts_started - 1)
            client.retries_total += 1
            client._record_counter("cloud.client.retries")
        self._attempts_started += 1
        return True

    def record_error(self, error: EMAPError) -> None:
        """The in-flight attempt raised; classify and move on."""
        self._failure = self._client._classify(error)

    def record_response(
        self, result: SearchResult, breakdown: TimingBreakdown
    ) -> None:
        """The in-flight attempt returned a payload; judge it.

        A response past the deadline or failing payload validation
        counts as a failed attempt (with its simulated penalty); an
        accepted one concludes the call as a success and closes the
        breaker.
        """
        client = self._client
        if breakdown.initial_s > client.config.deadline_s:
            self._failure = "timeout"
            self._penalty_s += client.config.deadline_s
            client.timeouts_total += 1
            client._record_counter("cloud.client.timeouts")
            return
        if client.config.validate_payloads:
            try:
                validate_payload(result, self._frame_samples)
            except PayloadError as error:
                self._failure = client._classify(error)
                self._penalty_s += breakdown.initial_s
                return
        client.successes += 1
        if client._state is not BreakerState.CLOSED:
            client._transition(BreakerState.CLOSED, self._transitions)
        client._consecutive_failures = 0
        self.outcome = CloudCallOutcome(
            ok=True,
            result=result,
            breakdown=breakdown,
            attempts=self._attempts_started,
            retries=self._attempts_started - 1,
            penalty_s=self._penalty_s,
            failure=None,
            breaker_state=client._state,
            transitions=tuple(self._transitions),
        )

    def _conclude_failure(self) -> None:
        """Every attempt failed: drive the breaker state machine."""
        client = self._client
        if client._state is BreakerState.HALF_OPEN:
            client._open(self._now_s, self._transitions)
        else:
            client._consecutive_failures += 1
            if (
                client._consecutive_failures
                >= client.config.breaker_failure_threshold
            ):
                client._open(self._now_s, self._transitions)
        self.outcome = client._failure_outcome(
            attempts=self._budget,
            penalty_s=self._penalty_s,
            failure=self._failure,
            transitions=self._transitions,
        )


class ResilientCloudClient:
    """Deadline + retry + circuit-breaker wrapper over a cloud endpoint."""

    def __init__(
        self, endpoint: CloudEndpoint, config: ResilienceConfig | None = None
    ) -> None:
        self.endpoint = endpoint
        self.config = config or ResilienceConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        self.calls = 0
        self.successes = 0
        self.failures = 0
        self.retries_total = 0
        self.timeouts_total = 0
        self.fast_failures = 0

    @property
    def breaker_state(self) -> BreakerState:
        return self._state

    def reset(self) -> None:
        """Fresh session: close the breaker, reseed the backoff RNG."""
        self._rng = np.random.default_rng(self.config.seed)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0

    def call(self, frame: Frame | np.ndarray, now_s: float) -> CloudCallOutcome:
        """One resilient cloud call at simulated instant ``now_s``."""
        driver = ResilientCallDriver(self, frame, now_s)
        while driver.begin_attempt():
            try:
                result, breakdown = self.endpoint.handle_frame(frame)
            except EMAPError as error:
                driver.record_error(error)
            else:
                driver.record_response(result, breakdown)
        outcome = driver.outcome
        if outcome is None:  # unreachable: begin_attempt()==False implies it
            raise FrameworkError("resilient call ended without an outcome")
        return outcome

    # -- internals -----------------------------------------------------

    def _failure_outcome(
        self,
        attempts: int,
        penalty_s: float,
        failure: str | None,
        transitions: list[BreakerState],
    ) -> CloudCallOutcome:
        self.failures += 1
        self._record_counter("cloud.client.failures")
        return CloudCallOutcome(
            ok=False,
            result=None,
            breakdown=None,
            attempts=attempts,
            retries=max(0, attempts - 1),
            penalty_s=penalty_s,
            failure=failure,
            breaker_state=self._state,
            transitions=tuple(transitions),
        )

    def _backoff_s(self, retry_index: int) -> float:
        """Seeded exponential backoff with multiplicative jitter."""
        base = self.config.backoff_base_s * self.config.backoff_factor**retry_index
        jitter = 1.0 + self.config.backoff_jitter * float(self._rng.uniform())
        return base * jitter

    def _open(self, now_s: float, transitions: list[BreakerState]) -> None:
        self._opened_at_s = now_s
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN, transitions)

    def _transition(
        self, state: BreakerState, transitions: list[BreakerState]
    ) -> None:
        if state is self._state:
            return
        self._state = state
        transitions.append(state)
        registry = obs.metrics()
        if registry.enabled:
            registry.set_gauge("cloud.client.breaker_state", BREAKER_GAUGE[state])

    @staticmethod
    def _classify(error: EMAPError) -> str:
        if isinstance(error, CloudUnavailableError):
            return "unreachable"
        if isinstance(error, PayloadError):
            return "payload"
        return "search_error"

    @staticmethod
    def _frame_samples(frame: Frame | np.ndarray) -> int:
        data = getattr(frame, "data", frame)
        return int(np.asarray(data).size)

    @staticmethod
    def _record_counter(name: str) -> None:
        registry = obs.metrics()
        if registry.enabled:
            registry.inc(name)
