"""Coarse-pass candidate screening for the two-stage plane search.

The exact skip-walk (:class:`~repro.cloud.search.PlaneWalker`) prices
every slice at its full dot products even when the slice plainly cannot
contribute a match.  The coarse pass screens slices first with a
**decimated block-sum (PAA) correlation**: each slice is summarised on
a fixed stride-``D`` grid (block sums, block energies, block
residuals), compiled **once per MDB generation** next to the exact norm
caches, and a single ``np.correlate`` over the zero-padded concatenated
block sums then scores every candidate window of every slice at
``1/D²`` of the exact per-phase cost.

Offsets are split by phase ``p = o mod D``.  For phase ``p`` the query
decomposes into a partial *head* (aligning the rest to the grid), a
grid-aligned *core* of full ``D``-blocks, and a partial *tail*; with
``q̃`` the core's block sums, ``S`` the slice's block sums, ``R²`` the
slice's per-block residual energies and ``B`` the full-extent block
norms, the exact centred dot at offset ``o`` obeys::

    dot(o) ≤ ⟨q̃, S⟩/D + ‖q⊥‖·√(ΣR²_core) + ‖q_head‖·B_head + ‖q_tail‖·B_tail

— the first term is the dot of the block-mean projections, the second
Cauchy–Schwarz on the orthogonal remainders, the edge terms
Cauchy–Schwarz against the enclosing grid blocks.  Two screening modes
build on this:

* **lossless** — the bound above, normalised by the exact cached
  window norms, is a provable upper bound on ω at every offset (up to
  an explicit ``BOUND_SLACK`` absorbing float rounding).  A slice whose
  best bound stays below the caller's *prune ceiling* provably yields
  no hit **and** walks with a constant stride (see
  ``lossless_walk_params`` in ``search.py``), so its exact walk
  collapses to a closed-form evaluation count — results stay
  bit-identical to the single-stage engines.
* **fast** — phase-0 coarse *scores* (no error terms) rank the slices
  and only the best ``keep_fraction`` (never fewer than the caller's
  ``min_keep``) are walked exactly.  Quality is gated by the Fig. 11
  search-quality benchmark, not by a proof.

Everything query-independent (grids, gather indices, per-phase window
norms, residual prefixes) lives in :class:`CoarseIndex`, cached on the
:class:`~repro.cloud.plane.PlaneCore` it was compiled from — a
generation bump rebuilds the core, which drops these caches exactly as
it drops the exact-pass norm caches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import SearchError

if TYPE_CHECKING:  # runtime import would be circular (plane builds us)
    from repro.cloud.plane import PlaneCore, PlaneNorms

#: Denominators below this are treated as flat (zero-variance) windows,
#: matching the exact engines' epsilon.
_NORM_EPSILON = 1e-12

#: Normalised slack added to every lossless upper bound.  The bound and
#: the exact engine evaluate mathematically comparable quantities with
#: different IEEE-754 summation orders (blockwise vs ``np.correlate``
#: vs rFFT); at the O(1) magnitudes of normalised correlations their
#: disagreement is ~1e-13, so 1e-9 covers it with margin to spare while
#: costing no observable prune power.
BOUND_SLACK = 1e-9


def _segment_max(values: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Per-segment maximum of ``values``; empty segments yield ``-inf``.

    ``bounds`` has ``n + 1`` entries delimiting ``n`` contiguous
    segments.  ``np.maximum.reduceat`` mis-handles empty segments
    (it returns the element *at* the boundary), so the reduction runs
    over the non-empty starts only — consecutive non-empty starts are
    exactly the segment boundaries once empties carry no elements.
    """
    counts = np.diff(bounds)
    out = np.full(counts.size, -np.inf)
    nonempty = counts > 0
    if values.size:
        out[nonempty] = np.maximum.reduceat(values, bounds[:-1][nonempty])
    return out


@dataclass(frozen=True)
class _PhaseIndex:
    """Precompiled slice-side arrays for one offset phase ``p``.

    All arrays are concatenated across slices in plane order;
    ``bounds`` (``n_slices + 1`` entries) delimits each slice's run.
    ``corr_pos`` indexes the shared padded-correlate output at each
    candidate's first core block; ``core_resid`` is the precomputed
    ``√(ΣR²)`` of the core blocks; ``head_norms``/``tail_norms`` are
    the enclosing-block norms for the partial edges (``None`` when the
    phase has no head/tail); ``window_norms`` are the *exact* centred
    window norms at this phase's offsets, gathered from the plane's
    norm cache.
    """

    head_len: int
    n_core: int
    tail_len: int
    corr_pos: np.ndarray
    core_resid: np.ndarray
    head_norms: np.ndarray | None
    tail_norms: np.ndarray | None
    window_norms: np.ndarray
    bounds: np.ndarray

    @property
    def nbytes(self) -> int:
        total = (
            self.corr_pos.nbytes
            + self.core_resid.nbytes
            + self.window_norms.nbytes
            + self.bounds.nbytes
        )
        if self.head_norms is not None:
            total += self.head_norms.nbytes
        if self.tail_norms is not None:
            total += self.tail_norms.nbytes
        return total


@dataclass(frozen=True)
class ScreenOutcome:
    """One query's coarse screening verdict over the whole plane.

    ``keep`` flags the slices the exact stage must walk; ``synthetic``
    holds, per slice, the closed-form evaluation count the exact walk
    *would* have spent on it if pruned (non-zero only in lossless mode,
    where the constant-stride walk length is provable).  ``margin`` is
    the mode's tightness observable: lossless reports the median slice
    bound minus the prune ceiling (≤ 0 means typical slices prune),
    fast reports the coarse score of the weakest kept slice.
    """

    mode: str
    keep: np.ndarray
    synthetic: np.ndarray
    margin: float
    elapsed_s: float

    def apply(
        self, scan: Sequence[int] | range
    ) -> tuple[np.ndarray, int, int]:
        """Restrict the verdict to ``scan``'s slice ids.

        Returns ``(kept_ids, pruned_count, synthetic_evaluated)`` —
        per-slice verdicts are global, so any partition of the plane
        (chunked workers included) reaches identical decisions.
        """
        ids = np.asarray(scan, dtype=np.int64)
        mask = self.keep[ids]
        kept = ids[mask]
        pruned = ids[~mask]
        return kept, int(pruned.size), int(self.synthetic[pruned].sum())


def assemble_lossless(
    slice_ub: np.ndarray,
    n_offsets: np.ndarray,
    ceiling: float,
    stride: int,
    elapsed_s: float,
) -> ScreenOutcome:
    """Turn per-slice ω bounds into a lossless screening verdict.

    Split out of :meth:`CoarseIndex.screen_lossless` so the sharded
    plane can concatenate each shard's :meth:`CoarseIndex.lossless_bounds`
    and assemble one global verdict with the identical operations.
    """
    keep = ~(slice_ub < ceiling)
    synthetic = np.where(
        n_offsets > 0, (n_offsets - 1) // stride + 1, 0
    ).astype(np.int64)
    finite = slice_ub[np.isfinite(slice_ub)]
    margin = float(np.median(finite) - ceiling) if finite.size else 0.0
    return ScreenOutcome(
        mode="lossless",
        keep=keep,
        synthetic=synthetic,
        margin=margin,
        elapsed_s=elapsed_s,
    )


def assemble_fast(
    scores: np.ndarray,
    keep_fraction: float,
    min_keep: int,
    elapsed_s: float,
) -> ScreenOutcome:
    """Turn per-slice coarse scores into a fast-mode verdict.

    The keep count and the lexsort tie-break run over the *global*
    score vector, so sharded scans (which concatenate per-shard
    :meth:`CoarseIndex.fast_scores`) select exactly the slices the
    monolithic screen would.
    """
    n = scores.size
    n_keep = min(n, max(min_keep, int(np.ceil(keep_fraction * n))))
    keep = np.zeros(n, dtype=bool)
    if n_keep >= n:
        keep[:] = True
        margin = 0.0
    else:
        order = np.lexsort((np.arange(n), -scores))
        keep[order[:n_keep]] = True
        floor = scores[order[n_keep - 1]] if n_keep else -np.inf
        margin = float(floor) if np.isfinite(floor) else 0.0
    return ScreenOutcome(
        mode="fast",
        keep=keep,
        synthetic=np.zeros(n, dtype=np.int64),
        margin=margin,
        elapsed_s=elapsed_s,
    )


class CoarseIndex:
    """The compiled coarse screen for one ``(frame length, D)`` pair.

    Construction walks every slice once, building the stride-``D``
    block summaries and, per phase, the gather indices and precomputed
    error terms that make a screen call pure vector work: one padded
    ``np.correlate`` per phase plus O(candidates) arithmetic, with no
    per-slice Python loop on the query path.
    """

    def __init__(
        self,
        core: "PlaneCore",
        norms: "PlaneNorms",
        frame_samples: int,
        decimation: int,
    ) -> None:
        if decimation < 2:
            raise SearchError(
                f"coarse decimation must be >= 2, got {decimation}"
            )
        if decimation > frame_samples:
            raise SearchError(
                f"coarse decimation {decimation} exceeds the frame length "
                f"{frame_samples}"
            )
        self.frame_samples = frame_samples
        self.decimation = decimation
        self.n_slices = core.n_slices
        m, d = frame_samples, decimation
        kernel_len = m // d
        self._kernel_len = kernel_len
        pad = kernel_len  # isolates slices in the shared correlate
        n_slices = core.n_slices

        # -- slice-side grid (query independent) ----------------------
        padded_parts: list[np.ndarray] = []
        resid_parts: list[np.ndarray] = []
        bnorm_parts: list[np.ndarray] = []
        padded_starts = np.zeros(n_slices, dtype=np.int64)
        block_starts = np.zeros(n_slices + 1, dtype=np.int64)
        n_offsets = np.zeros(n_slices, dtype=np.int64)
        zeros_pad = np.zeros(pad)
        position = 0
        for index in range(n_slices):
            data = core.slice_data(index)
            n = data.size
            n_offsets[index] = max(0, n - m + 1)
            centered = data - data.mean()
            n_full = n // d
            blocks = centered[: n_full * d].reshape(n_full, d)
            sums = blocks.sum(axis=1)
            sq_sums = np.einsum("ij,ij->i", blocks, blocks)
            resid = np.maximum(sq_sums - sums * sums / d, 0.0)
            bnorm = np.sqrt(sq_sums)
            remainder = n - n_full * d
            if remainder:
                tail = centered[n_full * d :]
                sums = np.append(sums, tail.sum())
                # The partial block is never a core block, only an
                # edge; its residual entry is padding for alignment.
                resid = np.append(resid, 0.0)
                bnorm = np.append(bnorm, float(np.linalg.norm(tail)))
            padded_starts[index] = position
            position += sums.size + pad
            block_starts[index + 1] = block_starts[index] + sums.size
            padded_parts.append(sums)
            padded_parts.append(zeros_pad)
            resid_parts.append(resid)
            bnorm_parts.append(bnorm)
        self._padded = (
            np.concatenate(padded_parts) if padded_parts else np.zeros(0)
        )
        resid_all = (
            np.concatenate(resid_parts) if resid_parts else np.zeros(0)
        )
        resid_prefix = np.concatenate(([0.0], np.cumsum(resid_all)))
        bnorm_all = (
            np.concatenate(bnorm_parts) if bnorm_parts else np.zeros(0)
        )
        self._n_offsets = n_offsets

        # -- per-phase gather tables ----------------------------------
        phases: list[_PhaseIndex] = []
        for p in range(d):
            head = 0 if p == 0 else d - p
            core_first = 0 if p == 0 else 1
            n_core = (m - head) // d
            tail = m - head - n_core * d
            pos_parts: list[np.ndarray] = []
            core_parts: list[np.ndarray] = []
            head_parts: list[np.ndarray] = []
            tail_parts: list[np.ndarray] = []
            wnorm_parts: list[np.ndarray] = []
            bounds = np.zeros(n_slices + 1, dtype=np.int64)
            for index in range(n_slices):
                n_off = int(n_offsets[index])
                count = (n_off - 1 - p) // d + 1 if n_off > p else 0
                bounds[index + 1] = bounds[index] + count
                if count == 0:
                    continue
                ks = np.arange(count, dtype=np.int64)
                local = ks + core_first
                pos_parts.append(padded_starts[index] + local)
                first_block = block_starts[index] + local
                core_parts.append(
                    np.sqrt(
                        resid_prefix[first_block + n_core]
                        - resid_prefix[first_block]
                    )
                )
                if head:
                    head_parts.append(bnorm_all[block_starts[index] + ks])
                if tail:
                    tail_parts.append(bnorm_all[first_block + n_core])
                wnorm_parts.append(norms.slice_norms(index)[p::d])
            phases.append(
                _PhaseIndex(
                    head_len=head,
                    n_core=n_core,
                    tail_len=tail,
                    corr_pos=(
                        np.concatenate(pos_parts)
                        if pos_parts
                        else np.zeros(0, dtype=np.int64)
                    ),
                    core_resid=(
                        np.concatenate(core_parts)
                        if core_parts
                        else np.zeros(0)
                    ),
                    head_norms=(
                        np.concatenate(head_parts) if head_parts else None
                    ),
                    tail_norms=(
                        np.concatenate(tail_parts) if tail_parts else None
                    ),
                    window_norms=(
                        np.concatenate(wnorm_parts)
                        if wnorm_parts
                        else np.zeros(0)
                    ),
                    bounds=bounds,
                )
            )
        self._phases = phases

    @property
    def nbytes(self) -> int:
        """Bytes of the compiled coarse arrays."""
        return (
            self._padded.nbytes
            + self._n_offsets.nbytes
            + sum(phase.nbytes for phase in self._phases)
        )

    @property
    def slice_offset_counts(self) -> np.ndarray:
        """Per-slice candidate-offset counts (``max(0, n - m + 1)``)."""
        return self._n_offsets

    # -- query-side decomposition ------------------------------------

    def _query_parts(
        self, centered: np.ndarray, phase: _PhaseIndex
    ) -> tuple[np.ndarray, float, float, float]:
        """Kernel + error coefficients of the query at one phase.

        Returns ``(kernel, q_perp, head_norm, tail_norm)`` where
        ``kernel`` is the core's block sums zero-padded to the shared
        correlate length and ``q_perp`` the norm of the core's
        block-mean-orthogonal remainder.
        """
        d = self.decimation
        head = phase.head_len
        core = centered[head : head + phase.n_core * d]
        kernel = np.zeros(self._kernel_len)
        if phase.n_core:
            block_sums = core.reshape(phase.n_core, d).sum(axis=1)
            kernel[: phase.n_core] = block_sums
            q_perp = float(
                np.sqrt(
                    max(
                        float(np.dot(core, core))
                        - float(np.dot(block_sums, block_sums)) / d,
                        0.0,
                    )
                )
            )
        else:
            q_perp = 0.0
        head_norm = float(np.linalg.norm(centered[:head])) if head else 0.0
        tail_norm = (
            float(np.linalg.norm(centered[head + phase.n_core * d :]))
            if phase.tail_len
            else 0.0
        )
        return kernel, q_perp, head_norm, tail_norm

    # -- screening ----------------------------------------------------

    def lossless_bounds(
        self, centered: np.ndarray, norm: float
    ) -> np.ndarray:
        """Per-slice upper bounds on ω (``-inf`` for offset-less slices).

        The producer half of :meth:`screen_lossless`.  Each slice's
        bound depends only on that slice's compiled summaries, so a
        sharded plane concatenates per-shard bound vectors and gets the
        monolithic vector bit-for-bit.
        """
        d = self.decimation
        slice_ub = np.full(self.n_slices, -np.inf)
        if norm < _NORM_EPSILON:
            # A flat query correlates to exactly 0 everywhere; the
            # zero bound is tight and certifies every slice at once.
            slice_ub[:] = 0.0
            return slice_ub
        for phase in self._phases:
            kernel, q_perp, head_norm, tail_norm = self._query_parts(
                centered, phase
            )
            dots = np.correlate(self._padded, kernel, mode="valid")
            estimate = dots[phase.corr_pos] / d
            error = q_perp * phase.core_resid
            if phase.head_norms is not None:
                error = error + head_norm * phase.head_norms
            if phase.tail_norms is not None:
                error = error + tail_norm * phase.tail_norms
            denominator = norm * phase.window_norms
            flat = denominator < _NORM_EPSILON
            safe = np.where(flat, 1.0, denominator)
            bound = (estimate + error) / safe + BOUND_SLACK
            bound[flat] = 0.0  # exact ω of a flat window is 0
            np.maximum(
                slice_ub,
                _segment_max(bound, phase.bounds),
                out=slice_ub,
            )
        return slice_ub

    def screen_lossless(
        self, centered: np.ndarray, norm: float, ceiling: float, stride: int
    ) -> ScreenOutcome:
        """Certify slices whose best ω bound stays below ``ceiling``.

        ``ceiling``/``stride`` come from
        ``lossless_walk_params``: below the ceiling a slice provably
        yields no hit and its walk advances by the constant ``stride``,
        so its exact evaluation count is ``⌈n_offsets / stride⌉`` —
        recorded in ``synthetic`` so merged statistics stay
        bit-identical to the single-stage engines.
        """
        started = time.perf_counter()
        slice_ub = self.lossless_bounds(centered, norm)
        return assemble_lossless(
            slice_ub,
            self._n_offsets,
            ceiling,
            stride,
            time.perf_counter() - started,
        )

    def fast_scores(
        self, centered: np.ndarray, norm: float
    ) -> np.ndarray:
        """Per-slice phase-0 coarse scores (``-inf`` for offset-less).

        The producer half of :meth:`screen_fast`; like
        :meth:`lossless_bounds` the scores are a pure per-slice
        function, so sharded concatenation reproduces the monolithic
        vector exactly.
        """
        d = self.decimation
        phase = self._phases[0]
        if norm < _NORM_EPSILON:
            return np.where(self._n_offsets > 0, 0.0, -np.inf)
        kernel, _, _, _ = self._query_parts(centered, phase)
        dots = np.correlate(self._padded, kernel, mode="valid")
        estimate = dots[phase.corr_pos] / d
        denominator = norm * phase.window_norms
        flat = denominator < _NORM_EPSILON
        safe = np.where(flat, 1.0, denominator)
        score = estimate / safe
        score[flat] = 0.0
        return _segment_max(score, phase.bounds)

    def screen_fast(
        self,
        centered: np.ndarray,
        norm: float,
        keep_fraction: float,
        min_keep: int,
    ) -> ScreenOutcome:
        """Rank slices by phase-0 coarse score; keep the best fraction.

        Keeps ``max(min_keep, ⌈keep_fraction · n_slices⌉)`` slices
        (all of them when that reaches the plane size).  Ties break on
        the lower slice id, so the selection is deterministic and
        identical across whole-plane and chunked scans.
        """
        started = time.perf_counter()
        scores = self.fast_scores(centered, norm)
        return assemble_fast(
            scores,
            keep_fraction,
            min_keep,
            time.perf_counter() - started,
        )
