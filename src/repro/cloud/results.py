"""Containers for cloud-search outcomes.

A :class:`SearchMatch` is the paper's tracked tuple ``W = [S, ω, β]``:
the matched signal-set, its correlation with the input frame, and the
offset within the slice where the match was found.  A
:class:`SearchResult` is the signal correlation set ``T`` plus the
search statistics the evaluation section reports (correlations
evaluated, exploration time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.signals.types import SignalSlice


@dataclass(frozen=True)
class SearchMatch:
    """One entry of the signal correlation set: ``W = [S, ω, β]``."""

    sig_slice: SignalSlice
    omega: float
    offset: int

    def __post_init__(self) -> None:
        if not (-1.0 <= self.omega <= 1.0):
            raise SearchError(f"normalised ω must be in [-1, 1], got {self.omega}")
        if self.offset < 0:
            raise SearchError(f"match offset must be non-negative, got {self.offset}")

    @property
    def anomalous(self) -> bool:
        """Whether the matched signal-set carries ``A(S) = 1``."""
        return self.sig_slice.label.is_anomalous


@dataclass
class SearchResult:
    """The signal correlation set ``T`` plus search statistics.

    ``heap_admissions`` counts top-K heap entries (pushes + replaces)
    during the scan.  For a merged parallel search, ``chunk_elapsed_s``
    holds each chunk's own wall time while ``elapsed_s`` is the true
    end-to-end latency of the whole partitioned search (both measured
    by the ``repro.obs`` tracer).

    Two-stage searches additionally report ``slices_pruned`` (slices
    the coarse pass removed before the exact walk; still counted in
    ``slices_searched``) and ``coarse_elapsed_s`` (stage-1 screening
    time, included in ``elapsed_s``).  In lossless mode the pruned
    slices' provable walk costs stay folded into
    ``correlations_evaluated``, so the statistic is bit-identical to a
    single-stage search.
    """

    matches: list[SearchMatch] = field(default_factory=list)
    correlations_evaluated: int = 0
    slices_searched: int = 0
    candidates_above_threshold: int = 0
    heap_admissions: int = 0
    elapsed_s: float = 0.0
    chunk_elapsed_s: list[float] = field(default_factory=list)
    slices_pruned: int = 0
    coarse_elapsed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.matches)

    @property
    def anomalous_count(self) -> int:
        """``N(AS)``: anomalous entries in the correlation set."""
        return sum(1 for match in self.matches if match.anomalous)

    @property
    def anomaly_probability(self) -> float:
        """Eq. 5 evaluated over the fresh correlation set.

        Returns 0 for an empty set (no evidence either way).
        """
        if not self.matches:
            return 0.0
        return self.anomalous_count / len(self.matches)

    @property
    def mean_omega(self) -> float:
        """Average cross-correlation of the set (Figs. 7a & 11)."""
        if not self.matches:
            return 0.0
        return sum(match.omega for match in self.matches) / len(self.matches)

    @property
    def min_omega(self) -> float:
        """Weakest correlation admitted to the set."""
        if not self.matches:
            return 0.0
        return min(match.omega for match in self.matches)
