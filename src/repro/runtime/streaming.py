"""Streaming monitor: the closed loop as an online, push-based API.

:class:`EMAPFramework` consumes a complete recording; a deployed edge
node instead sees samples arrive *live*.  :class:`StreamingMonitor`
exposes exactly that interface: push raw samples in arbitrary-size
chunks as the amplifier delivers them, and the monitor emits one
:class:`MonitorUpdate` per completed one-second frame — with the same
acquisition → search → tracking → prediction semantics as the batch
framework (the test suite asserts trace equivalence).

Cloud calls go through the same
:class:`~repro.cloud.client.ResilientCloudClient` as the batch loop:
a failed call (outage, timeout, dropped/corrupt payload, open breaker)
puts the monitor in **degraded mode** — it keeps tracking the stale
candidate set, flags each update's PA observation as stale
(:attr:`MonitorUpdate.degraded`), and re-dispatches per policy on
subsequent frames until a fresh set is adopted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.cloud.client import ResilienceConfig, ResilientCloudClient
from repro.edge.device import CloudCallPolicy
from repro.errors import FrameworkError, SignalError

if TYPE_CHECKING:  # avoid a circular import with repro.cloud.server
    from repro.cloud.client import CloudEndpoint
    from repro.cloud.results import SearchResult
from repro.edge.predictor import AnomalyPredictor, PredictorConfig
from repro.edge.tracker import SignalTracker, TrackerConfig
from repro.signals.filters import FilterSpec, StreamingFIRFilter
from repro.signals.types import BASE_SAMPLE_RATE_HZ, FRAME_SAMPLES, Frame


@dataclass(frozen=True)
class MonitorUpdate:
    """What the monitor reports after each completed frame."""

    frame_index: int
    time_s: float
    anomaly_probability: float
    tracked_count: int
    anomaly_predicted: bool
    cloud_call_issued: bool
    #: Whether a tracking iteration actually ran this frame (False
    #: while the initial search is in flight or the set is empty).
    tracking_active: bool = False
    #: True when this frame ran in degraded mode: the last cloud call
    #: failed and the tracked set (and its PA observation) is stale.
    degraded: bool = False
    #: True when this frame's cloud call failed after retries.
    cloud_call_failed: bool = False


@dataclass
class StreamingConfig:
    """Knobs of the streaming monitor."""

    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    policy: CloudCallPolicy = field(default_factory=CloudCallPolicy)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    filter_spec: FilterSpec = field(default_factory=FilterSpec)
    frame_samples: int = FRAME_SAMPLES
    #: Simulated cloud round-trip in whole frames: a search issued at
    #: frame N is adopted at frame N + latency (Fig. 9's in-flight gap).
    cloud_latency_frames: int = 2
    #: Keep at most this many entries in :attr:`StreamingMonitor.updates`
    #: (oldest dropped first).  ``None`` retains every update — fine for
    #: tests and short sessions, unbounded for a long-lived monitor.
    max_retained_updates: int | None = None

    def __post_init__(self) -> None:
        if self.frame_samples <= 0:
            raise FrameworkError(
                f"frame size must be positive, got {self.frame_samples}"
            )
        if self.cloud_latency_frames < 0:
            raise FrameworkError(
                f"cloud latency must be non-negative, got {self.cloud_latency_frames}"
            )
        if self.max_retained_updates is not None and self.max_retained_updates < 1:
            raise FrameworkError(
                "max_retained_updates must be None or >= 1, got "
                f"{self.max_retained_updates}"
            )


class StreamingMonitor:
    """Push-based EMAP session over a live sample stream."""

    def __init__(
        self, cloud: CloudEndpoint, config: StreamingConfig | None = None
    ) -> None:
        self.cloud = cloud
        self.config = config or StreamingConfig()
        self._client = ResilientCloudClient(cloud, self.config.resilience)
        self._filter = StreamingFIRFilter(self.config.filter_spec)
        self._tracker = SignalTracker(self.config.tracker)
        self._predictor = AnomalyPredictor(self.config.predictor)
        # Filtered samples awaiting a complete frame, kept as the pushed
        # chunks rather than one array: re-concatenating on every push
        # is O(buffer) per chunk, i.e. quadratic for the many-small-chunk
        # delivery real amplifiers produce.
        self._chunks: deque[np.ndarray] = deque()
        self._buffered = 0
        self._frame_index = 0
        self._iterations_since_refresh = 0
        self._pending: tuple[int, SearchResult] | None = None  # (ready_frame, result)
        self._degraded = False
        self.cloud_calls = 0
        self.cloud_failures = 0
        self.degraded_frames = 0
        self.updates: list[MonitorUpdate] = []

    @property
    def tracker(self) -> SignalTracker:
        return self._tracker

    @property
    def predictor(self) -> AnomalyPredictor:
        return self._predictor

    def push(self, samples: np.ndarray) -> list[MonitorUpdate]:
        """Feed raw (unfiltered) samples; returns updates for every
        frame the chunk completed."""
        chunk = np.asarray(samples, dtype=np.float64)
        if chunk.ndim != 1:
            raise SignalError(f"sample chunk must be 1-D, got shape {chunk.shape}")
        if chunk.size == 0:
            return []
        filtered = self._filter.process(chunk)
        if filtered.size:
            self._chunks.append(filtered)
            self._buffered += filtered.size
        emitted: list[MonitorUpdate] = []
        size = self.config.frame_samples
        while self._buffered >= size:
            emitted.append(self._handle_frame(self._assemble_frame(size)))
        self.updates.extend(emitted)
        limit = self.config.max_retained_updates
        if limit is not None and len(self.updates) > limit:
            del self.updates[: len(self.updates) - limit]
        return emitted

    @property
    def buffered_samples(self) -> int:
        """Filtered samples waiting for the next frame boundary."""
        return self._buffered

    def _assemble_frame(self, size: int) -> np.ndarray:
        """Pop exactly ``size`` buffered samples into one frame array."""
        frame = np.empty(size)
        filled = 0
        while filled < size:
            head = self._chunks[0]
            take = min(head.size, size - filled)
            frame[filled : filled + take] = head[:take]
            if take == head.size:
                self._chunks.popleft()
            else:
                self._chunks[0] = head[take:]
            filled += take
        self._buffered -= size
        return frame

    def _handle_frame(self, data: np.ndarray) -> MonitorUpdate:
        with obs.trace.span("runtime.stream_frame") as span:
            update = self._process_frame(data)
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("runtime.stream.frames")
            registry.observe("runtime.stream.frame_s", span.elapsed_s)
            # The live loop budget: each one-second frame must be fully
            # handled in under a second of host wall time.
            frame_budget_s = self.config.frame_samples / BASE_SAMPLE_RATE_HZ
            registry.observe(
                "runtime.loop.budget_used", span.elapsed_s / frame_budget_s
            )
            if span.elapsed_s > frame_budget_s:
                registry.inc("runtime.loop.deadline_misses")
        return update

    def _process_frame(self, data: np.ndarray) -> MonitorUpdate:
        frame = Frame(
            data=data,
            index=self._frame_index,
            filtered=True,
            expected_samples=self.config.frame_samples,
        )
        self._frame_index += 1
        time_s = (frame.index + 1) * self.config.frame_samples / BASE_SAMPLE_RATE_HZ

        # Adopt a finished background search.
        if self._pending is not None and frame.index >= self._pending[0]:
            self._tracker.load(self._pending[1])
            self._iterations_since_refresh = 0
            self._pending = None
            self._degraded = False

        # Snapshot the degraded flag the frame's PA observation runs
        # under; a call failure later this frame degrades *subsequent*
        # frames (mirrors the batch loop's stale_series semantics).
        was_degraded = self._degraded
        stepped = self._tracker.tracked_count > 0
        if stepped:
            step = self._tracker.step(frame)
            self._predictor.observe(
                step.anomaly_probability, support=step.tracked_after
            )
            self._iterations_since_refresh += 1
            probability = step.anomaly_probability
            tracked = step.tracked_after
            # The predictor runs on every tracking iteration, exactly
            # like the batch loop — even when the step emptied the set
            # (the EMA/trend may still flag an anomaly).
            predicted = self._predictor.predict()
        else:
            probability = 0.0
            tracked = 0
            predicted = False

        if was_degraded:
            self.degraded_frames += 1
            obs.metrics().inc("runtime.degraded_iterations")

        issued = False
        failed = False
        wants_call = self._pending is None and (
            tracked == 0
            or self.config.policy.should_call(
                tracked, self._iterations_since_refresh
            )
        )
        if wants_call:
            outcome = self._client.call(frame, now_s=time_s)
            if outcome.ok and outcome.result is not None:
                # Each retry defers adoption by one extra frame: the
                # re-attempts consumed (simulated) live air time.
                ready = (
                    frame.index
                    + 1
                    + self.config.cloud_latency_frames
                    + outcome.retries
                )
                self._pending = (ready, outcome.result)
                self._iterations_since_refresh = 0
                self.cloud_calls += 1
                issued = True
                obs.metrics().inc("edge.device.cloud_calls")
            else:
                # Degrade: keep the stale set, leave the refresh
                # counter running so the policy re-fires next frame
                # (the breaker keeps a hard outage cheap).
                failed = True
                self.cloud_failures += 1
                self._degraded = True

        return MonitorUpdate(
            frame_index=frame.index,
            time_s=time_s,
            anomaly_probability=probability,
            tracked_count=tracked,
            anomaly_predicted=predicted,
            cloud_call_issued=issued,
            tracking_active=stepped,
            degraded=was_degraded,
            cloud_call_failed=failed,
        )

    def reset(self) -> None:
        """Start a fresh session (new patient)."""
        self._filter.reset()
        self._tracker = SignalTracker(self.config.tracker)
        self._predictor = AnomalyPredictor(self.config.predictor)
        self._client.reset()
        self._chunks.clear()
        self._buffered = 0
        self._frame_index = 0
        self._iterations_since_refresh = 0
        self._pending = None
        self._degraded = False
        self.cloud_calls = 0
        self.cloud_failures = 0
        self.degraded_frames = 0
        self.updates = []
