"""The closed-loop EMAP framework (paper Fig. 3 / Fig. 9).

:class:`EMAPFramework` wires the edge device to the cloud server on a
simulated one-second timeline:

1. the first frame is uploaded; the cloud search runs for ΔCS and the
   top-100 set downloads after Δinitial (≈3 s) — frames acquired while
   the search is in flight are not tracked, exactly as in Fig. 9;
2. every subsequent frame drives one Algorithm 2 tracking iteration,
   producing an anomaly-probability observation;
3. when the call policy fires (N(F) < H, an emptied tracked set, or
   the five-iteration refresh), the current frame is transmitted *in
   the background*: tracking continues on the old set and the fresh
   set is adopted at the simulated instant the download completes.

Every cloud call goes through a
:class:`~repro.cloud.client.ResilientCloudClient` (deadline, seeded
retries, circuit breaker).  When a call fails — outage, timeout,
dropped/corrupt payload, open breaker — the loop **degrades** instead
of raising: it keeps tracking the stale candidate set, marks the PA
observations recorded meanwhile as stale
(:attr:`MonitoringResult.stale_series`), and re-dispatches per policy
on subsequent frames; the breaker turns a hard outage into cheap
fast-fails until its cooldown half-opens it.  With a healthy cloud the
resilient path is bit-identical to a direct call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.cloud.client import (
    BreakerState,
    CloudCallOutcome,
    CloudEndpoint,
    ResilienceConfig,
    ResilientCloudClient,
)
from repro.edge.device import CloudCallPolicy, EdgeDevice
from repro.errors import FrameworkError

if TYPE_CHECKING:  # avoid a circular import with repro.cloud.server
    from repro.cloud.results import SearchResult
from repro.edge.predictor import PredictorConfig
from repro.edge.tracker import TrackerConfig
from repro.runtime.clock import SimulationClock
from repro.runtime.events import EventKind, EventLog
from repro.signals.types import Frame, Signal

#: Breaker transitions → the event kinds the timeline records.
_BREAKER_EVENTS = {
    BreakerState.OPEN: EventKind.BREAKER_OPEN,
    BreakerState.HALF_OPEN: EventKind.BREAKER_HALF_OPEN,
    BreakerState.CLOSED: EventKind.BREAKER_CLOSE,
}


@dataclass(frozen=True)
class FrameworkConfig:
    """Knobs of the closed loop (stage configs live in their modules)."""

    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    policy: CloudCallPolicy = field(default_factory=CloudCallPolicy)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    tick_s: float = 1.0
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise FrameworkError(f"tick must be positive, got {self.tick_s}")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise FrameworkError(
                f"max iterations must be >= 1, got {self.max_iterations}"
            )


@dataclass
class MonitoringResult:
    """Everything one monitoring session produced."""

    pa_series: list[float] = field(default_factory=list)
    tracked_counts: list[int] = field(default_factory=list)
    predictions: list[bool] = field(default_factory=list)
    cloud_calls: int = 0
    initial_latency_s: float = 0.0
    iterations: int = 0
    deadline_misses: int = 0
    #: Cloud calls that failed after retries (or fast-failed on an
    #: open breaker) — the session degraded instead of raising.
    cloud_failures: int = 0
    #: Tracking iterations executed while the last cloud call had
    #: failed and no fresh set had been adopted yet.
    degraded_iterations: int = 0
    #: Per-iteration staleness flag, aligned with ``pa_series``: True
    #: when that PA observation was computed in degraded mode.
    stale_series: list[bool] = field(default_factory=list)
    events: EventLog = field(default_factory=EventLog)

    @property
    def final_prediction(self) -> bool:
        """The session's overall anomaly decision."""
        if not self.predictions:
            return False
        return self.predictions[-1]

    @property
    def peak_probability(self) -> float:
        if not self.pa_series:
            return 0.0
        return max(self.pa_series)


@dataclass
class _PendingSearch:
    """A cloud call in flight: its result and arrival instant."""

    result: SearchResult
    ready_at_s: float


class EMAPFramework:
    """Runs one patient recording through the full EMAP loop."""

    def __init__(
        self,
        cloud: CloudEndpoint,
        config: FrameworkConfig | None = None,
    ) -> None:
        self.cloud = cloud
        self.config = config or FrameworkConfig()

    def run(self, recording: Signal) -> MonitoringResult:
        """Monitor a recording end to end; returns the session result."""
        with obs.trace.span("runtime.session"):
            result = self._run(recording)
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("runtime.sessions")
            registry.inc("runtime.loop.iterations", result.iterations)
            registry.inc("runtime.loop.deadline_misses", result.deadline_misses)
            registry.inc("runtime.degraded_iterations", result.degraded_iterations)
            registry.inc("runtime.cloud_failures", result.cloud_failures)
            registry.observe("runtime.initial_latency_s", result.initial_latency_s)
        return result

    def _run(self, recording: Signal) -> MonitoringResult:
        edge = EdgeDevice(
            recording,
            tracker_config=self.config.tracker,
            predictor_config=self.config.predictor,
            policy=self.config.policy,
        )
        clock = SimulationClock()
        client = ResilientCloudClient(self.cloud, self.config.resilience)
        result = MonitoringResult()
        log = result.events
        pending: _PendingSearch | None = None
        degraded = False

        first_frame = edge.acquire()
        if first_frame is None:
            raise FrameworkError(
                "recording too short for even one acquisition frame"
            )
        clock.advance(self.config.tick_s)  # sampling window t0
        log.record(clock.now_s, EventKind.SAMPLE, frame=first_frame.index)
        pending = self._dispatch(client, edge, first_frame, clock.now_s, log, result)
        degraded = pending is None

        while True:
            if (
                self.config.max_iterations is not None
                and result.iterations >= self.config.max_iterations
            ):
                break
            frame = edge.acquire()
            if frame is None:
                break
            clock.advance(self.config.tick_s)
            log.record(clock.now_s, EventKind.SAMPLE, frame=frame.index)

            if pending is not None and clock.now_s >= pending.ready_at_s:
                edge.adopt_correlation_set(pending.result)
                log.record(
                    clock.now_s,
                    EventKind.SET_REFRESH,
                    matches=len(pending.result.matches),
                )
                pending = None
                degraded = False

            if edge.tracker.tracked_count == 0:
                # Nothing to track: the initial search is still in
                # flight, the whole set was pruned, or the cloud is
                # failing — make sure a replacement search is on its
                # way (the breaker keeps retries cheap during outages).
                if pending is None:
                    log.record(clock.now_s, EventKind.CLOUD_CALL, tracked=0)
                    pending = self._dispatch(
                        client, edge, frame, clock.now_s, log, result
                    )
                    if pending is None:
                        degraded = True
                continue

            step = edge.track(frame)
            result.iterations += 1
            result.pa_series.append(step.anomaly_probability)
            result.tracked_counts.append(step.tracked_after)
            result.stale_series.append(degraded)
            if degraded:
                result.degraded_iterations += 1
            self._check_loop_budget(step.area_evaluations, result)
            prediction = edge.predict()
            result.predictions.append(prediction)
            log.record(
                clock.now_s,
                EventKind.TRACK,
                iteration=step.iteration,
                tracked=step.tracked_after,
                removed=step.removed,
                pa=round(step.anomaly_probability, 4),
                stale=degraded,
            )
            log.record(clock.now_s, EventKind.PREDICTION, anomaly=prediction)

            # An emptied tracked set always warrants a call (there is
            # nothing left to track), even when ``tracking_threshold``
            # is 0 — the same semantics the streaming monitor applies.
            if pending is None and (
                edge.tracker.tracked_count == 0 or edge.wants_cloud_call()
            ):
                log.record(
                    clock.now_s,
                    EventKind.CLOUD_CALL,
                    tracked=edge.tracker.tracked_count,
                )
                pending = self._dispatch(
                    client, edge, frame, clock.now_s, log, result
                )
                if pending is None:
                    degraded = True

        return result

    def _check_loop_budget(
        self, area_evaluations: int, result: MonitoringResult
    ) -> None:
        """Score one iteration against the per-second loop budget.

        The edge must finish each tracking iteration inside one tick
        (Section V-C: ~900 ms of a 1 s budget); the device cost model
        converts the iteration's area evaluations to edge seconds, and
        an iteration over budget is a deadline miss.
        """
        edge_s = self.cloud.timing.tracking_iteration_s(area_evaluations)
        budget = self.config.tick_s
        if edge_s > budget:
            result.deadline_misses += 1
        registry = obs.metrics()
        if registry.enabled:
            registry.observe("runtime.loop.budget_used", edge_s / budget)
            registry.observe("runtime.loop.edge_iteration_s", edge_s)

    def _dispatch(
        self,
        client: ResilientCloudClient,
        edge: EdgeDevice,
        frame: Frame,
        now_s: float,
        log: EventLog,
        result: MonitoringResult,
    ) -> _PendingSearch | None:
        """Send a frame through the resilient client.

        Returns the in-flight search on success, or ``None`` when the
        call failed after retries (or fast-failed on an open breaker)
        — the caller then continues on the stale set in degraded mode.
        """
        outcome = client.call(frame, now_s=now_s)
        self._log_call_outcome(outcome, now_s, log)
        if not outcome.ok:
            result.cloud_failures += 1
            return None
        search_result, breakdown = outcome.result, outcome.breakdown
        if search_result is None or breakdown is None:
            raise FrameworkError("successful cloud call carried no payload")
        edge.request_cloud_call()
        result.cloud_calls += 1
        start = now_s + outcome.penalty_s
        log.record(start, EventKind.UPLOAD, seconds=round(breakdown.upload_s, 6))
        log.record(start + breakdown.upload_s, EventKind.SEARCH_START)
        done = start + breakdown.upload_s + breakdown.search_s
        log.record(
            done,
            EventKind.SEARCH_DONE,
            matches=len(search_result.matches),
            correlations=search_result.correlations_evaluated,
        )
        ready = done + breakdown.download_s
        log.record(ready, EventKind.DOWNLOAD, seconds=round(breakdown.download_s, 6))
        if result.cloud_calls == 1:
            # Δinitial: latency of the session's first successful call.
            result.initial_latency_s = ready - now_s
        return _PendingSearch(result=search_result, ready_at_s=ready)

    @staticmethod
    def _log_call_outcome(
        outcome: CloudCallOutcome, now_s: float, log: EventLog
    ) -> None:
        """Record retries, failures and breaker transitions."""
        for state in outcome.transitions:
            log.record(now_s, _BREAKER_EVENTS[state])
        if outcome.retries:
            log.record(now_s, EventKind.CLOUD_RETRY, retries=outcome.retries)
        if not outcome.ok:
            log.record(
                now_s,
                EventKind.CLOUD_FAIL,
                reason=outcome.failure or "unknown",
                attempts=outcome.attempts,
            )
