"""Runtime: simulated time, event tracing, and the closed-loop framework.

* :mod:`repro.runtime.clock` — the simulation clock (1 s ticks, Fig. 9).
* :mod:`repro.runtime.events` — the event log behind the Fig. 9
  timeline.
* :mod:`repro.runtime.timing` — Eq. 4's Δinitial decomposition and the
  calibrated device cost model.
* :mod:`repro.runtime.framework` — :class:`EMAPFramework`, the
  acquisition → cloud search → edge tracking loop.
"""

from repro.runtime.clock import SimulationClock
from repro.runtime.events import Event, EventKind, EventLog
from repro.runtime.framework import EMAPFramework, FrameworkConfig, MonitoringResult
from repro.runtime.streaming import MonitorUpdate, StreamingConfig, StreamingMonitor
from repro.runtime.timing import DeviceCostModel, TimingBreakdown, TimingModel

__all__ = [
    "DeviceCostModel",
    "EMAPFramework",
    "Event",
    "EventKind",
    "EventLog",
    "FrameworkConfig",
    "MonitorUpdate",
    "MonitoringResult",
    "SimulationClock",
    "StreamingConfig",
    "StreamingMonitor",
    "TimingBreakdown",
    "TimingModel",
]
