"""Timing model: Eq. 4's Δinitial and the calibrated device cost model.

The paper's testbed is an i7-7700HQ cloud and a Raspberry Pi B+ edge;
offline we replace wall-clock with a **cost model** calibrated to the
paper's reported operating points:

* the full MDB search finishes in ~3 s (Δinitial, Section V-B),
* tracking 100 signals takes ~900 ms per iteration (Section V-C),
* an edge cross-correlation evaluation costs ~4.3× an area evaluation
  (Fig. 8b).

Wall-clock *ratios* measured by the benchmarks come from the real
implementations; this model supplies the absolute seconds the
simulation timeline (Fig. 9) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrameworkError
from repro.network.link import NetworkLink

#: Fig. 8(b): edge cross-correlation / area-evaluation cost ratio.
EDGE_XCORR_AREA_RATIO = 4.3


@dataclass(frozen=True)
class DeviceCostModel:
    """Per-operation costs of the cloud and edge devices.

    ``cloud_correlations_per_s`` is calibrated so a default-scale MDB
    search (~1.2×10⁵ windowed correlations under Algorithm 1) takes
    ~2.8 s, reproducing the paper's ~3 s Δinitial.
    ``edge_area_eval_s`` is the cost of one 256-sample area evaluation
    on the edge device: one tracked signal costs a slice scan of ~187
    offsets (745 at stride 4), so at 4.8×10⁻⁵ s per evaluation tracking
    100 signals costs ~0.9 s per iteration — the paper's reported
    figure.
    """

    cloud_correlations_per_s: float = 42_000.0
    edge_area_eval_s: float = 4.8e-5
    edge_xcorr_eval_s: float | None = None

    def __post_init__(self) -> None:
        if self.cloud_correlations_per_s <= 0:
            raise FrameworkError(
                "cloud correlation rate must be positive, got "
                f"{self.cloud_correlations_per_s}"
            )
        if self.edge_area_eval_s <= 0:
            raise FrameworkError(
                f"edge area cost must be positive, got {self.edge_area_eval_s}"
            )

    @property
    def effective_edge_xcorr_eval_s(self) -> float:
        """Edge correlation cost; defaults to 4.3× the area cost."""
        if self.edge_xcorr_eval_s is not None:
            return self.edge_xcorr_eval_s
        return EDGE_XCORR_AREA_RATIO * self.edge_area_eval_s

    def cloud_search_time_s(self, correlations_evaluated: int) -> float:
        """ΔCS for a search that evaluated the given correlation count."""
        if correlations_evaluated < 0:
            raise FrameworkError(
                f"correlation count must be non-negative, got {correlations_evaluated}"
            )
        return correlations_evaluated / self.cloud_correlations_per_s

    def edge_tracking_time_s(self, area_evaluations: int) -> float:
        """Edge time for one tracking iteration's area evaluations."""
        if area_evaluations < 0:
            raise FrameworkError(
                f"area evaluation count must be non-negative, got {area_evaluations}"
            )
        return area_evaluations * self.edge_area_eval_s

    def edge_xcorr_tracking_time_s(self, correlation_evaluations: int) -> float:
        """Edge time had tracking used cross-correlation instead (Fig. 8b)."""
        if correlation_evaluations < 0:
            raise FrameworkError(
                "correlation evaluation count must be non-negative, got "
                f"{correlation_evaluations}"
            )
        return correlation_evaluations * self.effective_edge_xcorr_eval_s


@dataclass(frozen=True)
class TimingBreakdown:
    """Eq. 4: Δinitial = ΔEC + ΔCS + ΔCE."""

    upload_s: float
    search_s: float
    download_s: float

    def __post_init__(self) -> None:
        for name in ("upload_s", "search_s", "download_s"):
            if getattr(self, name) < 0:
                raise FrameworkError(f"{name} must be non-negative")

    @property
    def initial_s(self) -> float:
        """Δinitial, the first-iteration latency."""
        return self.upload_s + self.search_s + self.download_s


class TimingModel:
    """Combines the network link and device cost model."""

    def __init__(
        self,
        link: NetworkLink | None = None,
        costs: DeviceCostModel | None = None,
    ) -> None:
        self.link = link or NetworkLink.for_platform("LTE")
        self.costs = costs or DeviceCostModel()

    def initial_breakdown(
        self,
        frame_samples: int,
        correlations_evaluated: int,
        n_signals_downloaded: int,
    ) -> TimingBreakdown:
        """Eq. 4 for one cloud call."""
        download_s = (
            self.link.signal_set_download_time_s(n_signals_downloaded)
            if n_signals_downloaded > 0
            else 0.0
        )
        return TimingBreakdown(
            upload_s=self.link.frame_upload_time_s(frame_samples),
            search_s=self.costs.cloud_search_time_s(correlations_evaluated),
            download_s=download_s,
        )

    def tracking_iteration_s(self, area_evaluations: int) -> float:
        """Edge time for one tracking iteration (must stay < 1 s)."""
        return self.costs.edge_tracking_time_s(area_evaluations)
