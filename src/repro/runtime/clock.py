"""Simulation clock for the closed-loop framework.

The EMAP timeline (Fig. 9) advances in one-second acquisition ticks
(T_clk = 1 s); cloud searches run "in the background" and complete at a
wall-clock instant derived from the timing model.  The clock tracks the
current simulated time and enforces monotonicity.
"""

from __future__ import annotations

from repro.errors import FrameworkError


class SimulationClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0:
            raise FrameworkError(f"start time must be non-negative, got {start_s}")
        self._now = float(start_s)

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, delta_s: float) -> float:
        """Move time forward by ``delta_s``; returns the new time."""
        if delta_s < 0:
            raise FrameworkError(f"cannot advance time by {delta_s} s")
        self._now += delta_s
        return self._now

    def advance_to(self, instant_s: float) -> float:
        """Move time forward to an absolute instant (no-op if past)."""
        if instant_s > self._now:
            self._now = float(instant_s)
        return self._now
