"""Event log for the EMAP timeline (paper Fig. 9).

Every stage transition of the closed loop is recorded as a timestamped
event; the Fig. 9 experiment renders the log as the paper's timing
diagram (sampling ticks, upload, cloud search window, download,
per-iteration tracking, background refreshes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.errors import FrameworkError


class EventKind(Enum):
    """The stage transitions the framework records."""

    SAMPLE = "sample"
    UPLOAD = "upload"
    SEARCH_START = "search_start"
    SEARCH_DONE = "search_done"
    DOWNLOAD = "download"
    TRACK = "track"
    CLOUD_CALL = "cloud_call"
    CLOUD_FAIL = "cloud_fail"
    CLOUD_RETRY = "cloud_retry"
    BREAKER_OPEN = "breaker_open"
    BREAKER_HALF_OPEN = "breaker_half_open"
    BREAKER_CLOSE = "breaker_close"
    SET_REFRESH = "set_refresh"
    PREDICTION = "prediction"


@dataclass(frozen=True)
class Event:
    """One timestamped stage transition."""

    time_s: float
    kind: EventKind
    detail: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise FrameworkError(f"event time must be non-negative, got {self.time_s}")


class EventLog:
    """Time-ordered event record.

    Events may be recorded out of arrival order (a dispatched cloud
    search logs its *future* completion instant); the log keeps itself
    sorted by timestamp, with ties preserving insertion order.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def record(self, time_s: float, kind: EventKind, **detail: Any) -> Event:
        """Insert one event at its time-ordered position."""
        event = Event(time_s=time_s, kind=kind, detail=dict(detail))
        position = len(self._events)
        while position > 0 and self._events[position - 1].time_s > time_s + 1e-12:
            position -= 1
        self._events.insert(position, event)
        return event

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in time order."""
        return [event for event in self._events if event.kind is kind]

    def first_of_kind(self, kind: EventKind) -> Event | None:
        for event in self._events:
            if event.kind is kind:
                return event
        return None

    def timeline(self) -> list[str]:
        """Human-readable rendering, one line per event."""
        lines = []
        for event in self._events:
            details = ", ".join(f"{k}={v}" for k, v in sorted(event.detail.items()))
            lines.append(f"[{event.time_s:9.3f}s] {event.kind.value:<12} {details}")
        return lines
