"""One-stop pipeline assembly for examples, benchmarks and the CLI.

:func:`build_pipeline` wires the whole stack — corpora → MDB → cloud
server → closed-loop framework — from a single :class:`PipelineConfig`,
so a downstream user gets a running EMAP in three lines::

    from repro.config import PipelineConfig, build_pipeline

    pipeline = build_pipeline(PipelineConfig(mdb_scale=0.5))
    result = pipeline.framework.run(recording)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import TracebackType

from repro.cloud.parallel import ParallelSearch
from repro.cloud.search import SearchConfig, SlidingWindowSearch
from repro.cloud.server import CloudServer
from repro.datasets.registry import scaled_registry
from repro.edge.device import CloudCallPolicy
from repro.edge.predictor import PredictorConfig
from repro.edge.tracker import TrackerConfig
from repro.errors import ConfigurationError
from repro.mdb.builder import BuildReport, MDBBuilder
from repro.mdb.mdb import MegaDatabase
from repro.network.link import NetworkLink
from repro.runtime.framework import EMAPFramework, FrameworkConfig
from repro.runtime.timing import DeviceCostModel, TimingModel


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to stand up a full EMAP instance.

    ``mdb_scale`` scales the five corpora's record counts (1.0 ≈ 1400
    signal-sets); ``platform`` picks the Fig. 4 radio link.
    ``search_workers > 1`` serves searches on the persistent
    shared-memory worker pool (``search_chunks`` partitions per
    request); the default stays in-process.
    """

    mdb_scale: float = 1.0
    seed: int = 0
    with_artifacts: bool = True
    platform: str = "LTE"
    search: SearchConfig = field(default_factory=SearchConfig)
    search_workers: int = 1
    search_chunks: int = 4
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    policy: CloudCallPolicy = field(default_factory=CloudCallPolicy)
    costs: DeviceCostModel = field(default_factory=DeviceCostModel)

    def __post_init__(self) -> None:
        if self.mdb_scale <= 0:
            raise ConfigurationError(
                f"MDB scale must be positive, got {self.mdb_scale}"
            )
        if self.search_workers < 1:
            raise ConfigurationError(
                f"search worker count must be >= 1, got {self.search_workers}"
            )
        if self.search_chunks < 1:
            raise ConfigurationError(
                f"search chunk count must be >= 1, got {self.search_chunks}"
            )


@dataclass
class Pipeline:
    """An assembled EMAP instance."""

    config: PipelineConfig
    mdb: MegaDatabase
    build_report: BuildReport
    cloud: CloudServer
    framework: EMAPFramework

    def close(self) -> None:
        """Release cloud resources (worker pool, shared memory)."""
        self.cloud.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def build_pipeline(config: PipelineConfig | None = None) -> Pipeline:
    """Build corpora, MDB, cloud server and framework from one config."""
    cfg = config or PipelineConfig()
    registry = scaled_registry(
        scale=cfg.mdb_scale, seed=cfg.seed, with_artifacts=cfg.with_artifacts
    )
    builder = MDBBuilder()
    report = builder.build(registry)
    timing = TimingModel(
        link=NetworkLink.for_platform(cfg.platform), costs=cfg.costs
    )
    if cfg.search_workers > 1:
        search_engine = ParallelSearch(
            cfg.search,
            n_chunks=cfg.search_chunks,
            n_workers=cfg.search_workers,
        )
    else:
        search_engine = SlidingWindowSearch(cfg.search, precompute=True)
    cloud = CloudServer(builder.mdb, search=search_engine, timing=timing)
    framework = EMAPFramework(
        cloud,
        FrameworkConfig(
            tracker=cfg.tracker, predictor=cfg.predictor, policy=cfg.policy
        ),
    )
    return Pipeline(
        config=cfg,
        mdb=builder.mdb,
        build_report=report,
        cloud=cloud,
        framework=framework,
    )
