"""The six communication platforms compared in Fig. 4.

Rates are nominal effective throughputs adapted from the surveys the
paper cites ([19] Steer, "Beyond 3G"; [20] Parkvall et al.,
"LTE-Advanced").  Absolute values matter less than ordering and the
feasibility cut-offs the paper draws: 256 samples must upload in under
1 ms and 100 signal-sets must download in under 200 ms on 4G-class
links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError


@dataclass(frozen=True)
class CommunicationPlatform:
    """One radio platform's effective link characteristics."""

    name: str
    uplink_mbps: float
    downlink_mbps: float
    setup_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.uplink_mbps <= 0 or self.downlink_mbps <= 0:
            raise NetworkError(
                f"{self.name}: link rates must be positive, got "
                f"up={self.uplink_mbps}, down={self.downlink_mbps}"
            )
        if self.setup_latency_s < 0:
            raise NetworkError(
                f"{self.name}: setup latency must be non-negative, "
                f"got {self.setup_latency_s}"
            )


#: The platforms of Fig. 4, slowest to fastest uplink.
PLATFORMS: dict[str, CommunicationPlatform] = {
    platform.name: platform
    for platform in (
        CommunicationPlatform("HSPA", uplink_mbps=2.3, downlink_mbps=7.2),
        CommunicationPlatform("HSPA+", uplink_mbps=5.8, downlink_mbps=21.0),
        CommunicationPlatform("WiMax Release 1", uplink_mbps=10.0, downlink_mbps=23.0),
        CommunicationPlatform("LTE", uplink_mbps=25.0, downlink_mbps=75.0),
        CommunicationPlatform("WiMax Release 2", uplink_mbps=60.0, downlink_mbps=140.0),
        CommunicationPlatform("LTE-A", uplink_mbps=250.0, downlink_mbps=600.0),
    )
}


def platform_names() -> tuple[str, ...]:
    """Platform names in registration (slowest-uplink-first) order."""
    return tuple(PLATFORMS)


def get_platform(name: str) -> CommunicationPlatform:
    """Look up a platform by name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(PLATFORMS)
        raise NetworkError(f"unknown platform {name!r}; known: {known}") from None
