"""Payload sizing for uploads and downloads.

The edge samples at 16-bit resolution (Section V-A), so an upload of
``n`` samples is ``16 n`` bits plus a small framing header.  A
downloaded signal correlation set carries, per entry, the 1000-sample
slice plus its match metadata (ω, β, label, id).
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.signals.types import SLICE_SAMPLES

#: Bits per EEG sample (paper: 16-bit resolution).
SAMPLE_BITS = 16

#: Fixed per-message framing overhead (transport headers), in bits.
MESSAGE_OVERHEAD_BITS = 512

#: Per-signal match metadata in a download (ω, β, label, id), in bits.
SIGNAL_METADATA_BITS = 192


def frame_payload_bits(n_samples: int, sample_bits: int = SAMPLE_BITS) -> int:
    """Size of an upload of ``n_samples`` samples."""
    if n_samples <= 0:
        raise NetworkError(f"sample count must be positive, got {n_samples}")
    if sample_bits <= 0:
        raise NetworkError(f"sample width must be positive, got {sample_bits}")
    return n_samples * sample_bits + MESSAGE_OVERHEAD_BITS


def signal_set_payload_bits(
    n_signals: int,
    slice_samples: int = SLICE_SAMPLES,
    sample_bits: int = SAMPLE_BITS,
) -> int:
    """Size of a download of ``n_signals`` matched signal-sets."""
    if n_signals <= 0:
        raise NetworkError(f"signal count must be positive, got {n_signals}")
    if slice_samples <= 0:
        raise NetworkError(f"slice size must be positive, got {slice_samples}")
    per_signal = slice_samples * sample_bits + SIGNAL_METADATA_BITS
    return n_signals * per_signal + MESSAGE_OVERHEAD_BITS
