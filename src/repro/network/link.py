"""Transmission-time model over one communication platform.

Reproduces Fig. 4's two panels and the paper's real-time feasibility
constraints: ΔEC (one-second frame upload) must stay under 1 ms and
ΔCE (top-100 download) under 200 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import NetworkError
from repro.network.payload import frame_payload_bits, signal_set_payload_bits
from repro.network.platforms import CommunicationPlatform, get_platform

#: The paper's real-time upload budget for one frame (Fig. 4a).
UPLOAD_BUDGET_S = 1e-3

#: The paper's real-time download budget for the top-100 set (Fig. 4b).
DOWNLOAD_BUDGET_S = 0.2


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point edge-cloud link over one platform."""

    platform: CommunicationPlatform

    @classmethod
    def for_platform(cls, name: str) -> "NetworkLink":
        """Construct a link from a platform name."""
        return cls(get_platform(name))

    def upload_time_s(self, payload_bits: int) -> float:
        """Time to push ``payload_bits`` up to the cloud."""
        if payload_bits <= 0:
            raise NetworkError(f"payload must be positive, got {payload_bits}")
        rate = self.platform.uplink_mbps * 1e6
        elapsed_s = self.platform.setup_latency_s + payload_bits / rate
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("network.uploads")
            registry.inc("network.bytes_up", (payload_bits + 7) // 8)
            registry.observe("network.upload_s", elapsed_s)
        return elapsed_s

    def download_time_s(self, payload_bits: int) -> float:
        """Time to pull ``payload_bits`` down from the cloud."""
        if payload_bits <= 0:
            raise NetworkError(f"payload must be positive, got {payload_bits}")
        rate = self.platform.downlink_mbps * 1e6
        elapsed_s = self.platform.setup_latency_s + payload_bits / rate
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("network.downloads")
            registry.inc("network.bytes_down", (payload_bits + 7) // 8)
            registry.observe("network.download_s", elapsed_s)
        return elapsed_s

    def frame_upload_time_s(self, n_samples: int) -> float:
        """ΔEC: upload time for an ``n_samples`` frame."""
        return self.upload_time_s(frame_payload_bits(n_samples))

    def signal_set_download_time_s(self, n_signals: int) -> float:
        """ΔCE: download time for ``n_signals`` matched signal-sets."""
        return self.download_time_s(signal_set_payload_bits(n_signals))

    def meets_upload_budget(self, n_samples: int, budget_s: float = UPLOAD_BUDGET_S) -> bool:
        """Whether a frame upload fits the paper's 1 ms budget."""
        return self.frame_upload_time_s(n_samples) <= budget_s

    def meets_download_budget(
        self, n_signals: int, budget_s: float = DOWNLOAD_BUDGET_S
    ) -> bool:
        """Whether a set download fits the paper's 200 ms budget."""
        return self.signal_set_download_time_s(n_signals) <= budget_s
