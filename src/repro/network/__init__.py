"""Network substrate: analytic link models for the six platforms of Fig. 4.

The paper's transmission-time figures are adapted from published
nominal rates for HSPA, HSPA+, LTE, LTE-A and WiMax releases 1/2
(refs [19], [20]).  This subpackage reproduces them analytically:
``time = setup_latency + payload_bits / rate``.
"""

from repro.network.link import NetworkLink
from repro.network.payload import (
    SAMPLE_BITS,
    frame_payload_bits,
    signal_set_payload_bits,
)
from repro.network.platforms import (
    PLATFORMS,
    CommunicationPlatform,
    get_platform,
    platform_names,
)

__all__ = [
    "CommunicationPlatform",
    "NetworkLink",
    "PLATFORMS",
    "SAMPLE_BITS",
    "frame_payload_bits",
    "get_platform",
    "platform_names",
    "signal_set_payload_bits",
]
