"""Async multi-tenant serving gateway with cross-request batching.

:class:`ServingGateway` fronts one :class:`~repro.cloud.server.CloudServer`
for many concurrent edge sessions.  In-flight search requests are
coalesced by a dispatcher task into single
:meth:`~repro.cloud.server.CloudServer.handle_batch` calls — one
multi-query plane walk serves the whole batch — while every request
still passes through its **tenant's own**
:class:`~repro.cloud.client.ResilientCloudClient`, so deadlines,
retries and the circuit breaker act per tenant, never globally.

The resilient semantics are not re-implemented here: each request
drives the same sans-I/O :class:`~repro.cloud.client.ResilientCallDriver`
state machine the synchronous client uses; only the transport differs
(an attempt awaits the next coalesced batch instead of calling the
endpoint inline).  Per-tenant fault plans (:mod:`repro.faults`) stack
between the driver and the batch results exactly as a
:class:`~repro.faults.injector.FaultInjector` stacks under the
synchronous client.

Admission control is two bounded queues deep: a global in-flight bound
and a per-tenant bound.  A request arriving over either limit is
rejected immediately (``failure="rejected"``, no attempt, breaker
untouched) — backpressure the caller can see, instead of an unbounded
queue.  Tenant fairness is a round-robin drain: each batch takes one
request per tenant in rotation until the batch is full, so a flooding
tenant cannot starve the others.

Everything observable goes through :mod:`repro.obs` as ``gateway.*``
metrics (requests, rejections, batches, batch size, queue depth,
end-to-end request latency), rendered by ``emap obs`` like every other
subsystem.
"""

from __future__ import annotations

import asyncio
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro import obs
from repro.cloud.client import (
    CloudCallOutcome,
    ResilienceConfig,
    ResilientCallDriver,
    ResilientCloudClient,
)
from repro.errors import EMAPError, GatewayError
from repro.faults.injector import FaultInjector
from repro.obs.sanitize import sanitize_enabled
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # heavy types stay annotations-only
    from repro.cloud.results import SearchResult
    from repro.cloud.server import CloudServer
    from repro.runtime.timing import TimingBreakdown, TimingModel
    from repro.signals.types import Frame


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the serving gateway.

    ``coalesce_window_s`` is *wall* time the dispatcher waits after the
    first enqueued request for the batch to fill (0 yields once to the
    event loop, which is the right setting for as-fast-as-possible
    simulation).  The two queue bounds are the admission-control
    surface: requests beyond them are rejected, not buffered.
    """

    max_batch: int = 16
    coalesce_window_s: float = 0.0
    max_queue_per_tenant: int = 256
    max_pending: int = 2048
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Route each batched plane walk through the default thread-pool
    #: executor instead of calling it inline on the event loop.  Inline
    #: is faster for as-fast-as-possible simulation (no thread hop) but
    #: stalls the loop for the duration of the walk; offload keeps the
    #: loop responsive at real MDB scales.  Defaults to the
    #: ``EMAP_SANITIZE`` gate so sanitized lanes exercise the
    #: non-blocking path and the loop-stall detector stays meaningful.
    offload_batches: bool = field(default_factory=sanitize_enabled)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise GatewayError(f"max batch must be >= 1, got {self.max_batch}")
        if self.coalesce_window_s < 0:
            raise GatewayError(
                f"coalesce window must be non-negative, got "
                f"{self.coalesce_window_s}"
            )
        if self.max_queue_per_tenant < 1:
            raise GatewayError(
                "per-tenant queue bound must be >= 1, got "
                f"{self.max_queue_per_tenant}"
            )
        if self.max_pending < 1:
            raise GatewayError(
                f"global pending bound must be >= 1, got {self.max_pending}"
            )


class _StagedEndpoint:
    """CloudEndpoint adapter handing out the batch-computed response.

    The dispatcher stages the ``(result, breakdown)`` pair the batched
    walk produced for a request, then invokes the tenant's endpoint
    chain (fault injector included) exactly like the synchronous path
    invokes ``handle_frame`` — so per-tenant fault plans keep their
    call-index semantics and the resilient driver sees an ordinary
    endpoint response or :class:`~repro.errors.EMAPError`.
    """

    def __init__(self, timing: TimingModel) -> None:
        self.timing = timing
        self._staged: tuple[SearchResult, TimingBreakdown] | None = None

    def stage(self, result: SearchResult, breakdown: TimingBreakdown) -> None:
        self._staged = (result, breakdown)

    def handle_frame(
        self, frame: Frame | np.ndarray
    ) -> tuple[SearchResult, TimingBreakdown]:
        staged = self._staged
        if staged is None:
            raise GatewayError(
                "no staged batch response for this request (dispatcher bug)"
            )
        self._staged = None
        return staged


class _PendingAttempt:
    """One enqueued attempt: the frame and the future its batch resolves."""

    __slots__ = ("frame", "future")

    def __init__(
        self,
        frame: Frame | np.ndarray,
        future: asyncio.Future[tuple[SearchResult, TimingBreakdown]],
    ) -> None:
        self.frame = frame
        self.future = future


class _TenantState:
    """Everything the gateway keeps per tenant."""

    __slots__ = (
        "chain",
        "client",
        "name",
        "queue",
        "rejected",
        "served_failure",
        "served_ok",
        "stage",
        "submitted",
    )

    def __init__(
        self,
        name: str,
        stage: _StagedEndpoint,
        chain: _StagedEndpoint | FaultInjector,
        client: ResilientCloudClient,
    ) -> None:
        self.name = name
        self.stage = stage
        self.chain = chain
        self.client = client
        self.queue: deque[_PendingAttempt] = deque()
        self.submitted = 0
        self.served_ok = 0
        self.served_failure = 0
        self.rejected = 0


def _tenant_seed(base_seed: int, name: str) -> int:
    """Deterministic per-tenant backoff seed (stable across runs)."""
    return (base_seed + zlib.crc32(name.encode("utf-8"))) % (2**31)


class ServingGateway:
    """Coalescing, fair, backpressured front door to a cloud server."""

    def __init__(
        self,
        server: CloudServer,
        config: GatewayConfig | None = None,
        tenant_plans: Mapping[str, FaultPlan] | None = None,
    ) -> None:
        self.server = server
        self.config = config or GatewayConfig()
        self._tenant_plans = dict(tenant_plans or {})
        self._tenants: dict[str, _TenantState] = {}
        self._order: list[str] = []
        self._rr_index = 0
        self._pending_total = 0
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task[None] | None = None
        self._closed = False
        #: The non-EMAP exception that killed the dispatcher, if any.
        self.dispatcher_crash: Exception | None = None
        self.queue_high_water = 0
        self.batches_served = 0
        self.attempts_served = 0
        self.requests_rejected = 0

    # -- public surface ------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests currently queued (all tenants)."""
        return self._pending_total

    def tenant_client(self, tenant: str) -> ResilientCloudClient:
        """The tenant's resilient client (breaker state, counters)."""
        return self._tenant(tenant).client

    def tenant_names(self) -> list[str]:
        """Tenants seen so far, in first-submit order."""
        return list(self._order)

    async def submit(
        self, tenant: str, frame: Frame | np.ndarray, now_s: float
    ) -> CloudCallOutcome:
        """One resilient search request for ``tenant`` at ``now_s``.

        Runs the full per-tenant resilient call (admission → breaker →
        attempts → classified outcome); each attempt rides the next
        coalesced batch.  Never raises for a failed call — like the
        synchronous client, failures come back as a classified
        :class:`~repro.cloud.client.CloudCallOutcome`.
        """
        if self._closed:
            raise GatewayError("gateway is closed; create a new one")
        state = self._tenant(tenant)
        state.submitted += 1
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("gateway.requests")
        if (
            self._pending_total >= self.config.max_pending
            or len(state.queue) >= self.config.max_queue_per_tenant
        ):
            return self._reject(state)
        loop = asyncio.get_running_loop()
        started = loop.time()
        driver = ResilientCallDriver(state.client, frame, now_s)
        while driver.begin_attempt():
            if self._closed:
                # The gateway closed mid-call: attempts already queued
                # were failed by ``aclose``; later retries fail here
                # without resurrecting the dispatcher.
                driver.record_error(
                    GatewayError("gateway closed with requests in flight")
                )
                continue
            future: asyncio.Future[
                tuple[SearchResult, TimingBreakdown]
            ] = loop.create_future()
            attempt = _PendingAttempt(frame, future)
            state.queue.append(attempt)
            self._pending_total += 1
            if self._pending_total > self.queue_high_water:
                self.queue_high_water = self._pending_total
            self._ensure_dispatcher()
            try:
                result, breakdown = await future
            except EMAPError as error:
                driver.record_error(error)
            else:
                driver.record_response(result, breakdown)
        outcome = driver.outcome
        if outcome is None:  # unreachable: the driver always concludes
            raise GatewayError("resilient driver ended without an outcome")
        if outcome.ok:
            state.served_ok += 1
        else:
            state.served_failure += 1
        if registry.enabled:
            registry.observe(
                "gateway.request_latency_s", loop.time() - started
            )
            if not outcome.ok:
                registry.inc("gateway.failures")
        return outcome

    async def aclose(self) -> None:
        """Stop the dispatcher; pending attempts fail as unavailable.

        Idempotent; afterwards :meth:`submit` raises instead of silently
        resurrecting the dispatcher on a half-torn-down gateway.
        """
        self._closed = True
        task = self._dispatcher
        self._dispatcher = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as error:
                # A crashed dispatcher already failed its riders;
                # keep the cause for post-mortems instead of raising
                # it again out of close.
                self.dispatcher_crash = error
        self._fail_pending(
            GatewayError("gateway closed with requests in flight")
        )

    # -- internals -----------------------------------------------------

    def _tenant(self, name: str) -> _TenantState:
        if not name:
            raise GatewayError("tenant name must be non-empty")
        state = self._tenants.get(name)
        if state is not None:
            return state
        base = self.config.resilience
        tenant_config = replace(base, seed=_tenant_seed(base.seed, name))
        stage = _StagedEndpoint(self.server.timing)
        plan = self._tenant_plans.get(name)
        chain: _StagedEndpoint | FaultInjector = (
            FaultInjector(stage, plan) if plan is not None else stage
        )
        client = ResilientCloudClient(chain, tenant_config)
        state = _TenantState(name, stage, chain, client)
        self._tenants[name] = state
        self._order.append(name)
        return state

    def _reject(self, state: _TenantState) -> CloudCallOutcome:
        """Admission control turned the request away: no attempt, no
        breaker interaction — pure backpressure the caller can retry."""
        state.rejected += 1
        self.requests_rejected += 1
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("gateway.rejected")
        return CloudCallOutcome(
            ok=False,
            result=None,
            breakdown=None,
            attempts=0,
            retries=0,
            penalty_s=0.0,
            failure="rejected",
            breaker_state=state.client.breaker_state,
        )

    def _ensure_dispatcher(self) -> None:
        if self._closed:
            return
        if self._wake is None:
            self._wake = asyncio.Event()
        self._wake.set()
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def _dispatch_loop(self) -> None:
        wake = self._wake
        if wake is None:  # pragma: no cover - _ensure_dispatcher sets it
            raise GatewayError("dispatcher started without a wake event")
        while True:
            await wake.wait()
            if self.config.coalesce_window_s > 0:
                await asyncio.sleep(self.config.coalesce_window_s)
            else:
                await asyncio.sleep(0)
            wake.clear()
            while self._pending_total > 0:
                batch = self._next_batch()
                try:
                    await self._serve_batch(batch)
                except Exception as error:
                    # A non-EMAP exception is a bug, not a classified
                    # failure — but dying silently would strand every
                    # submitter on a future nobody will resolve.  Fail
                    # the in-flight riders and the queues, then let the
                    # task end with the real traceback.
                    failure = GatewayError(
                        f"gateway dispatcher crashed: {error!r}"
                    )
                    for _, attempt in batch:
                        if not attempt.future.done():
                            attempt.future.set_exception(failure)
                    self._fail_pending(failure)
                    raise
                # Yield so resolved submitters run (and may re-enqueue
                # retries) before the next batch is drained.
                await asyncio.sleep(0)

    def _fail_pending(self, failure: GatewayError) -> None:
        """Fail every queued attempt (dispatcher crash or close)."""
        for state in self._tenants.values():
            while state.queue:
                attempt = state.queue.popleft()
                self._pending_total -= 1
                if not attempt.future.done():
                    attempt.future.set_exception(failure)

    def _next_batch(self) -> list[tuple[_TenantState, _PendingAttempt]]:
        """Round-robin drain: one request per tenant per rotation.

        Work-conserving — once the quieter tenants' queues run dry the
        rotation keeps filling the batch from whoever still has work —
        but within a batch no tenant gets a second request before every
        backlogged tenant got its first.
        """
        batch: list[tuple[_TenantState, _PendingAttempt]] = []
        names = self._order
        n = len(names)
        if n == 0:
            return batch
        empty_scans = 0
        while len(batch) < self.config.max_batch and empty_scans < n:
            state = self._tenants[names[self._rr_index % n]]
            self._rr_index = (self._rr_index + 1) % n
            if state.queue:
                batch.append((state, state.queue.popleft()))
                self._pending_total -= 1
                empty_scans = 0
            else:
                empty_scans += 1
        return batch

    async def _serve_batch(
        self, batch: list[tuple[_TenantState, _PendingAttempt]]
    ) -> None:
        if not batch:
            return
        frames = [attempt.frame for _, attempt in batch]
        try:
            if self.config.offload_batches:
                served = await asyncio.get_running_loop().run_in_executor(
                    None, self.server.handle_batch, frames
                )
            else:
                # Inline is a deliberate trade: the simulation-speed
                # path accepts stalling the loop for one plane walk.
                served = self.server.handle_batch(frames)  # emaplint: disable=EM007
        except EMAPError as error:
            # The whole batch failed before any per-tenant stage: every
            # rider sees the same endpoint error through its driver.
            for _, attempt in batch:
                if not attempt.future.done():
                    attempt.future.set_exception(error)
            return
        finally:
            self.batches_served += 1
            self.attempts_served += len(batch)
            registry = obs.metrics()
            if registry.enabled:
                registry.inc("gateway.batches")
                registry.observe("gateway.batch_size", float(len(batch)))
                registry.set_gauge(
                    "gateway.queue_depth", float(self._pending_total)
                )
        for (state, attempt), (result, breakdown) in zip(batch, served):
            state.stage.stage(result, breakdown)
            try:
                value = state.chain.handle_frame(attempt.frame)
            except EMAPError as error:
                if not attempt.future.done():
                    attempt.future.set_exception(error)
            else:
                if not attempt.future.done():
                    attempt.future.set_result(value)
