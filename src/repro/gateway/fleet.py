"""Simulated session fleets driving the serving gateway.

:func:`run_fleet` spawns ``n_sessions`` concurrent asyncio sessions
against one :class:`~repro.gateway.gateway.ServingGateway`.  Each
session belongs to a tenant, arrives at a seeded offset inside the
arrival horizon, issues a seeded number of frame requests with
simulated think time between them, and retries admission rejections a
bounded number of times before counting itself *dropped* — the failure
mode the soak gate treats as fatal.

Two clocks run side by side.  The **simulated** clock (``now_s``) is
what sessions hand the resilient client — breaker cooldowns, think
time and backoff penalties all live there, and with ``time_scale=0``
it never sleeps, so a 60-simulated-second fleet finishes in wall
milliseconds-to-seconds.  The **wall** clock measures real end-to-end
request latency through the gateway (queueing + batching + search),
which is what the ``gateway.request_latency_s`` histogram and the
report's p50/p95/p99 summarise.

With ``edge_steps_per_request > 0`` the simulator also exercises the
edge leg: after each successful search a session adopts the result
into a shared :class:`~repro.edge.fleet.FleetTracker` and runs that
many tracking iterations.  Concurrent sessions' frames are coalesced
by :class:`EdgeStepDriver` into single fused fleet steps (the
slice-major megabatch path), run on a dedicated worker thread so the
event loop never blocks on the kernel.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro.edge.fleet import FleetTracker
from repro.edge.tracker import TrackerConfig, TrackingStep
from repro.errors import EMAPError, GatewayError
from repro.gateway.gateway import GatewayConfig, ServingGateway

if TYPE_CHECKING:
    from repro.cloud.results import SearchResult
    from repro.cloud.server import CloudServer
    from repro.faults.plan import FaultPlan
    from repro.signals.types import SignalSlice

_T = TypeVar("_T")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of a simulated serving fleet."""

    n_sessions: int = 200
    n_tenants: int = 8
    #: Mean requests per session (seeded Poisson, minimum 1).
    mean_requests_per_session: float = 4.0
    #: Simulated seconds between a session's consecutive requests.
    think_time_s: float = 1.0
    #: Sessions arrive uniformly over this many simulated seconds.
    arrival_horizon_s: float = 5.0
    #: Admission-rejection retries before a session counts as dropped.
    admission_retries: int = 5
    #: Simulated backoff between admission retries.
    admission_backoff_s: float = 0.25
    #: Wall seconds per simulated second (0 = as fast as possible).
    time_scale: float = 0.0
    #: Edge tracking iterations a session runs after each successful
    #: search (0 = cloud-only simulation, the historical behaviour).
    edge_steps_per_request: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise GatewayError(
                f"fleet needs >= 1 session, got {self.n_sessions}"
            )
        if self.n_tenants < 1:
            raise GatewayError(
                f"fleet needs >= 1 tenant, got {self.n_tenants}"
            )
        if self.mean_requests_per_session < 1:
            raise GatewayError(
                "mean requests per session must be >= 1, got "
                f"{self.mean_requests_per_session}"
            )
        if self.think_time_s < 0 or self.arrival_horizon_s < 0:
            raise GatewayError("fleet times must be non-negative")
        if self.admission_retries < 0:
            raise GatewayError(
                "admission retries must be non-negative, got "
                f"{self.admission_retries}"
            )
        if self.admission_backoff_s < 0 or self.time_scale < 0:
            raise GatewayError("fleet times must be non-negative")
        if self.edge_steps_per_request < 0:
            raise GatewayError(
                "edge steps per request must be non-negative, got "
                f"{self.edge_steps_per_request}"
            )


@dataclass
class TenantSummary:
    """Per-tenant aggregate of the fleet run."""

    sessions: int = 0
    requests: int = 0
    successes: int = 0
    failures: int = 0
    rejected: int = 0
    dropped_sessions: int = 0

    @property
    def failure_ratio(self) -> float:
        return self.failures / self.requests if self.requests else 0.0


@dataclass
class FleetReport:
    """What the whole fleet run produced."""

    sessions_completed: int
    sessions_dropped: int
    requests: int
    successes: int
    failures: int
    rejections: int
    wall_elapsed_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    batches_served: int
    mean_batch_size: float
    queue_high_water: int
    pending_at_end: int
    per_tenant: dict[str, TenantSummary] = field(default_factory=dict)
    #: Edge leg (zeros when ``edge_steps_per_request == 0``).
    edge_steps: int = 0
    edge_evaluations: int = 0
    edge_fused_steps: int = 0
    edge_mean_fused_batch: float = 0.0
    edge_dedup_ratio: float = 1.0

    @property
    def throughput_rps(self) -> float:
        if self.wall_elapsed_s <= 0:
            return 0.0
        return self.requests / self.wall_elapsed_s

    def report(self) -> str:
        """Human-readable summary (the ``emap serve`` output)."""
        lines = [
            f"sessions: {self.sessions_completed} completed, "
            f"{self.sessions_dropped} dropped",
            f"requests: {self.requests} "
            f"({self.successes} ok, {self.failures} failed, "
            f"{self.rejections} rejections)",
            f"wall time: {self.wall_elapsed_s:.2f}s "
            f"({self.throughput_rps:.0f} req/s)",
            f"latency p50/p95/p99: {self.latency_p50_s * 1e3:.1f} / "
            f"{self.latency_p95_s * 1e3:.1f} / "
            f"{self.latency_p99_s * 1e3:.1f} ms",
            f"batches: {self.batches_served} "
            f"(mean size {self.mean_batch_size:.1f}), "
            f"queue high-water {self.queue_high_water}, "
            f"pending at end {self.pending_at_end}",
        ]
        if self.edge_steps:
            lines.append(
                f"edge: {self.edge_steps} session steps in "
                f"{self.edge_fused_steps} fused fleet steps "
                f"(mean batch {self.edge_mean_fused_batch:.1f}), "
                f"{self.edge_evaluations} area evaluations, "
                f"dedup ratio {self.edge_dedup_ratio:.1f}"
            )
        lines.append(
            "per tenant (requests ok/failed/rejected, dropped sessions):"
        )
        for name in sorted(self.per_tenant):
            tenant = self.per_tenant[name]
            lines.append(
                f"  {name:<12} {tenant.successes}/{tenant.failures}"
                f"/{tenant.rejected}, dropped {tenant.dropped_sessions}"
            )
        return "\n".join(lines)


@dataclass
class _SessionResult:
    tenant: str
    requests: int = 0
    successes: int = 0
    failures: int = 0
    rejected: int = 0
    dropped: bool = False
    edge_steps: int = 0
    edge_evaluations: int = 0


class EdgeStepDriver:
    """Coalesces concurrent sessions' edge frames into fused fleet steps.

    Async front door to one (non-thread-safe) shared
    :class:`~repro.edge.fleet.FleetTracker`: every tracker interaction —
    adopt, step, close — runs on a dedicated single worker thread, which
    both serialises access and keeps the event loop off the kernel's
    critical path (the C kernel releases the GIL and threads
    internally).  Frames submitted while a fused step is running pile up
    in ``_pending``; the stepper drains them as the *next* fused
    :meth:`FleetTracker.step` — so the batch size adapts to load exactly
    like the gateway's cloud-side coalescing.
    """

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.tracker = FleetTracker(config)
        self._pending: dict[
            str, tuple[np.ndarray, asyncio.Future[TrackingStep]]
        ] = {}
        self._wake: asyncio.Event | None = None
        self._stepper: asyncio.Task[None] | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="edge-step"
        )
        self._closed = False
        self.fused_steps = 0
        self.frames_stepped = 0
        #: Highest references-per-slice ratio seen across fused steps
        #: (sessions close at end, so the final ratio is trivially 1).
        self.max_dedup_ratio = 1.0

    async def adopt(self, session_id: str, result: SearchResult) -> None:
        """(Re)open ``session_id`` with a fresh correlation set."""
        await self._run(self.tracker.open_session, session_id, result)

    async def close_session(self, session_id: str) -> None:
        await self._run(self.tracker.close_session, session_id)

    async def step(self, session_id: str, frame: np.ndarray) -> TrackingStep:
        """One tracking iteration, riding the next fused fleet step."""
        if self._closed:
            raise GatewayError("edge driver is closed; create a new one")
        if session_id in self._pending:
            raise GatewayError(
                f"session {session_id!r} already has a frame in flight"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future[TrackingStep] = loop.create_future()
        self._pending[session_id] = (np.asarray(frame, dtype=np.float64), future)
        if self._wake is None:
            self._wake = asyncio.Event()
        self._wake.set()
        if self._stepper is None or self._stepper.done():
            self._stepper = loop.create_task(self._step_loop())
        return await future

    async def aclose(self) -> None:
        """Stop the stepper and the worker thread; fail pending frames."""
        self._closed = True
        task = self._stepper
        self._stepper = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        failure = GatewayError("edge driver closed with frames in flight")
        for _, future in self._pending.values():
            if not future.done():
                future.set_exception(failure)
        self._pending.clear()
        self._executor.shutdown(wait=True)

    async def _run(self, fn: Callable[..., _T], *args: object) -> _T:
        """Run one tracker call on the serialising worker thread."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _step_loop(self) -> None:
        wake = self._wake
        if wake is None:  # pragma: no cover - step() sets it first
            raise GatewayError("edge stepper started without a wake event")
        while True:
            await wake.wait()
            # One yield lets same-tick submitters join this fused step.
            await asyncio.sleep(0)
            wake.clear()
            while self._pending:
                batch = self._pending
                self._pending = {}
                frames = {sid: frame for sid, (frame, _) in batch.items()}
                try:
                    steps = await self._run(self.tracker.step, frames)
                except EMAPError as error:
                    for _, future in batch.values():
                        if not future.done():
                            future.set_exception(error)
                    continue
                self.fused_steps += 1
                self.frames_stepped += len(batch)
                self.max_dedup_ratio = max(
                    self.max_dedup_ratio, self.tracker.dedup_ratio
                )
                for sid, (_, future) in batch.items():
                    if not future.done():
                        future.set_result(steps[sid])
                # Yield so resolved sessions run (and may re-enqueue the
                # next frame) before this loop drains again.
                await asyncio.sleep(0)


def build_frame_pool(
    slices: Sequence[SignalSlice],
    n_frames: int = 32,
    frame_samples: int = 256,
    seed: int = 0,
) -> list[np.ndarray]:
    """Seeded query frames cut from real slice windows.

    Sessions draw from this pool, so every request is a plausible
    bandpass-filtered frame with genuine near-matches in the plane.
    """
    if n_frames < 1:
        raise GatewayError(f"frame pool needs >= 1 frame, got {n_frames}")
    rng = np.random.default_rng(seed)
    pool: list[np.ndarray] = []
    eligible = [s for s in slices if len(s) >= frame_samples]
    if not eligible:
        raise GatewayError(
            f"no slice long enough for {frame_samples}-sample frames"
        )
    for _ in range(n_frames):
        sig_slice = eligible[int(rng.integers(len(eligible)))]
        last = len(sig_slice) - frame_samples
        start = int(rng.integers(last + 1))
        pool.append(
            np.asarray(
                sig_slice.data[start : start + frame_samples],
                dtype=np.float64,
            )
        )
    return pool


async def _sleep_scaled(simulated_s: float, time_scale: float) -> None:
    """Sleep ``simulated_s`` of simulated time at the configured scale."""
    await asyncio.sleep(simulated_s * time_scale if time_scale > 0 else 0)


async def _run_session(
    gateway: ServingGateway,
    config: FleetConfig,
    frames: Sequence[np.ndarray],
    index: int,
    latencies: list[float],
    edge: EdgeStepDriver | None = None,
) -> _SessionResult:
    rng = np.random.default_rng(np.random.SeedSequence((config.seed, index)))
    tenant = f"tenant-{index % config.n_tenants}"
    session = _SessionResult(tenant=tenant)
    session_id = f"session-{index}"
    edge_opened = False
    arrival = float(rng.uniform(0.0, config.arrival_horizon_s))
    n_requests = 1 + int(
        rng.poisson(max(0.0, config.mean_requests_per_session - 1.0))
    )
    now_s = arrival
    await _sleep_scaled(arrival, config.time_scale)
    loop = asyncio.get_running_loop()
    try:
        for _ in range(n_requests):
            frame = frames[int(rng.integers(len(frames)))]
            admitted = False
            for _ in range(config.admission_retries + 1):
                started = loop.time()
                outcome = await gateway.submit(tenant, frame, now_s)
                if outcome.failure == "rejected":
                    session.rejected += 1
                    now_s += config.admission_backoff_s
                    await _sleep_scaled(
                        config.admission_backoff_s, config.time_scale
                    )
                    continue
                admitted = True
                latencies.append(loop.time() - started)
                session.requests += 1
                if outcome.ok:
                    session.successes += 1
                else:
                    session.failures += 1
                now_s += outcome.penalty_s
                break
            if not admitted:
                session.dropped = True
                break
            if edge is not None and outcome.ok and outcome.result is not None:
                # The edge leg: adopt the fresh correlation set, then run
                # the configured tracking iterations — each riding a
                # fused fleet step shared with concurrent sessions.
                await edge.adopt(session_id, outcome.result)
                edge_opened = True
                for _ in range(config.edge_steps_per_request):
                    edge_frame = frames[int(rng.integers(len(frames)))]
                    step = await edge.step(session_id, edge_frame)
                    session.edge_steps += 1
                    session.edge_evaluations += step.area_evaluations
            now_s += config.think_time_s
            await _sleep_scaled(config.think_time_s, config.time_scale)
    finally:
        if edge is not None and edge_opened:
            await edge.close_session(session_id)
    return session


async def _run_fleet_async(
    server: CloudServer,
    frames: Sequence[np.ndarray],
    config: FleetConfig,
    gateway_config: GatewayConfig,
    tenant_plans: Mapping[str, FaultPlan] | None,
) -> FleetReport:
    gateway = ServingGateway(server, gateway_config, tenant_plans)
    edge: EdgeStepDriver | None = None
    if config.edge_steps_per_request > 0:
        edge = EdgeStepDriver(
            TrackerConfig(frame_samples=int(frames[0].size))
        )
    latencies: list[float] = []
    started = time.perf_counter()
    try:
        sessions = await asyncio.gather(
            *(
                _run_session(gateway, config, frames, index, latencies, edge)
                for index in range(config.n_sessions)
            )
        )
    finally:
        pending_at_end = gateway.pending
        await gateway.aclose()
        if edge is not None:
            await edge.aclose()
    elapsed = time.perf_counter() - started

    per_tenant: dict[str, TenantSummary] = {}
    for session in sessions:
        summary = per_tenant.setdefault(session.tenant, TenantSummary())
        summary.sessions += 1
        summary.requests += session.requests
        summary.successes += session.successes
        summary.failures += session.failures
        summary.rejected += session.rejected
        if session.dropped:
            summary.dropped_sessions += 1

    requests = sum(s.requests for s in sessions)
    sample = np.asarray(latencies) if latencies else np.zeros(1)
    p50, p95, p99 = (
        float(value) for value in np.percentile(sample, (50.0, 95.0, 99.0))
    )
    batches = gateway.batches_served
    return FleetReport(
        sessions_completed=sum(1 for s in sessions if not s.dropped),
        sessions_dropped=sum(1 for s in sessions if s.dropped),
        requests=requests,
        successes=sum(s.successes for s in sessions),
        failures=sum(s.failures for s in sessions),
        rejections=sum(s.rejected for s in sessions),
        wall_elapsed_s=elapsed,
        latency_p50_s=p50,
        latency_p95_s=p95,
        latency_p99_s=p99,
        batches_served=batches,
        mean_batch_size=gateway.attempts_served / batches if batches else 0.0,
        queue_high_water=gateway.queue_high_water,
        pending_at_end=pending_at_end,
        per_tenant=per_tenant,
        edge_steps=sum(s.edge_steps for s in sessions),
        edge_evaluations=sum(s.edge_evaluations for s in sessions),
        edge_fused_steps=edge.fused_steps if edge is not None else 0,
        edge_mean_fused_batch=(
            edge.frames_stepped / edge.fused_steps
            if edge is not None and edge.fused_steps
            else 0.0
        ),
        edge_dedup_ratio=(
            edge.max_dedup_ratio if edge is not None else 1.0
        ),
    )


def run_fleet(
    server: CloudServer,
    frames: Sequence[np.ndarray],
    config: FleetConfig | None = None,
    gateway_config: GatewayConfig | None = None,
    tenant_plans: Mapping[str, FaultPlan] | None = None,
) -> FleetReport:
    """Drive a simulated session fleet through a fresh gateway.

    ``frames`` is the query pool sessions draw from (seeded).  Builds
    the gateway, runs every session to completion (or drop), closes the
    gateway, and returns the aggregated :class:`FleetReport`.
    """
    if not frames:
        raise GatewayError("fleet needs a non-empty frame pool")
    return asyncio.run(
        _run_fleet_async(
            server,
            frames,
            config or FleetConfig(),
            gateway_config or GatewayConfig(),
            tenant_plans,
        )
    )
