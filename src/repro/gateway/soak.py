"""Soak scenario: sustained mixed traffic with one tenant under chaos.

:func:`run_soak` is the repeatable serving-health gate behind the CI
``soak`` job: it builds a reduced-scale evaluation MDB, points a fleet
of simulated sessions at a fresh gateway, injects a seeded fault plan
into exactly one tenant, and checks hard invariants on the outcome —

* **no dropped session** — admission control may push back, but every
  session must eventually get through its requests;
* **fault isolation** — tenants without a fault plan finish with zero
  failed requests (one tenant's chaos must not leak through the shared
  batch walk), while the faulted tenant's failure ratio stays inside
  the degraded budget;
* **bounded queues** — the queue high-water mark stays under its
  budget and the gateway drains to zero pending at the end;
* **latency budget** — wall-clock p99 end-to-end latency stays under
  the configured ceiling;
* **edge completeness** — when the fleet runs the edge leg
  (``edge_steps_per_request > 0``), every successful search is followed
  by exactly the configured number of fused tracking iterations.

Any breach lands in :attr:`SoakReport.violations`; CI fails on a
non-empty list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GatewayError
from repro.faults.plan import FaultPlan
from repro.gateway.fleet import (
    FleetConfig,
    FleetReport,
    build_frame_pool,
    run_fleet,
)
from repro.gateway.gateway import GatewayConfig


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario, MDB scale to latency ceiling."""

    mdb_scale: float = 0.12
    fleet: FleetConfig = field(
        default_factory=lambda: FleetConfig(
            n_sessions=200,
            n_tenants=8,
            mean_requests_per_session=4.0,
            think_time_s=8.0,
            arrival_horizon_s=20.0,
        )
    )
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: The single tenant running under an injected fault plan.
    faulted_tenant: str = "tenant-0"
    fault_seed: int = 13
    fault_rate: float = 0.35
    #: Failure-ratio budget for the faulted tenant (its degraded mode).
    max_faulted_failure_ratio: float = 0.9
    #: Wall-clock p99 ceiling for end-to-end request latency.  In
    #: as-fast-as-possible mode every session arrives within the same
    #: few event-loop ticks, so tail latency is dominated by honest
    #: queueing behind ~n_sessions/max_batch batch walks; the ceiling
    #: is a tripwire for unbounded growth, not a tight SLO.
    max_p99_latency_s: float = 10.0
    #: Queue high-water budget (unbounded-growth tripwire).
    max_queue_high_water: int = 1024
    n_frames: int = 32
    seed: int = 0
    #: Two-stage search mode for the soaked server ("off", "lossless",
    #: or "fast") — lets the soak lane exercise the coarse screen under
    #: chaos without changing the gate semantics.
    two_stage: str = "off"

    def __post_init__(self) -> None:
        if not (0.0 < self.mdb_scale <= 1.0):
            raise GatewayError(
                f"mdb scale must be in (0, 1], got {self.mdb_scale}"
            )
        if self.two_stage not in ("off", "lossless", "fast"):
            raise GatewayError(
                f"two-stage mode must be off/lossless/fast, got "
                f"{self.two_stage!r}"
            )
        if not (0.0 <= self.max_faulted_failure_ratio <= 1.0):
            raise GatewayError(
                "faulted failure-ratio budget must be in [0, 1], got "
                f"{self.max_faulted_failure_ratio}"
            )
        if self.max_p99_latency_s <= 0:
            raise GatewayError(
                f"p99 budget must be positive, got {self.max_p99_latency_s}"
            )
        if self.max_queue_high_water < 1:
            raise GatewayError(
                "queue high-water budget must be >= 1, got "
                f"{self.max_queue_high_water}"
            )


@dataclass
class SoakReport:
    """Fleet outcome plus every violated gate (empty = healthy)."""

    fleet: FleetReport
    violations: list[str]

    @property
    def passed(self) -> bool:
        return not self.violations

    def report(self) -> str:
        lines = [self.fleet.report(), ""]
        if self.passed:
            lines.append("soak gates: all passed")
        else:
            lines.append("soak gates VIOLATED:")
            lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def _estimate_faulted_calls(config: SoakConfig) -> int:
    """Rough per-tenant call horizon so the plan spans the whole run."""
    fleet = config.fleet
    per_tenant_sessions = -(-fleet.n_sessions // fleet.n_tenants)
    mean_calls = per_tenant_sessions * fleet.mean_requests_per_session
    retries = config.gateway.resilience.max_retries + 1
    return max(10, int(mean_calls * retries * 2))


def run_soak(config: SoakConfig | None = None) -> SoakReport:
    """Run one soak scenario end to end and judge its gates."""
    from repro.cloud.search import SearchConfig, SlidingWindowSearch
    from repro.cloud.server import CloudServer
    from repro.eval.experiments.common import build_fixture

    config = config or SoakConfig()
    fixture = build_fixture(mdb_scale=config.mdb_scale, seed=config.seed)
    server = CloudServer(
        fixture.slices,
        search=SlidingWindowSearch(
            SearchConfig(two_stage=config.two_stage), precompute=True
        ),
    )
    frames = build_frame_pool(
        fixture.slices, n_frames=config.n_frames, seed=config.seed
    )
    plan = FaultPlan.generate(
        seed=config.fault_seed,
        horizon_calls=_estimate_faulted_calls(config),
        fault_rate=config.fault_rate,
    )
    try:
        fleet = run_fleet(
            server,
            frames,
            config.fleet,
            config.gateway,
            tenant_plans={config.faulted_tenant: plan},
        )
    finally:
        server.close()

    violations: list[str] = []
    if fleet.sessions_dropped:
        violations.append(
            f"{fleet.sessions_dropped} session(s) dropped after exhausting "
            "admission retries"
        )
    if fleet.sessions_completed != config.fleet.n_sessions:
        violations.append(
            f"only {fleet.sessions_completed} of {config.fleet.n_sessions} "
            "sessions completed"
        )
    for name in sorted(fleet.per_tenant):
        tenant = fleet.per_tenant[name]
        if name == config.faulted_tenant:
            if tenant.failure_ratio > config.max_faulted_failure_ratio:
                violations.append(
                    f"faulted tenant {name} failure ratio "
                    f"{tenant.failure_ratio:.2f} exceeds degraded budget "
                    f"{config.max_faulted_failure_ratio:.2f}"
                )
        elif tenant.failures:
            violations.append(
                f"clean tenant {name} saw {tenant.failures} failed "
                "request(s) — fault isolation breached"
            )
    if fleet.queue_high_water > config.max_queue_high_water:
        violations.append(
            f"queue high-water {fleet.queue_high_water} exceeded budget "
            f"{config.max_queue_high_water}"
        )
    if fleet.pending_at_end:
        violations.append(
            f"{fleet.pending_at_end} request(s) still pending at fleet end"
        )
    if fleet.latency_p99_s > config.max_p99_latency_s:
        violations.append(
            f"p99 latency {fleet.latency_p99_s:.3f}s exceeded budget "
            f"{config.max_p99_latency_s:.3f}s"
        )
    steps_per_request = config.fleet.edge_steps_per_request
    if steps_per_request > 0:
        # Every successful search must have been followed by exactly
        # the configured number of fused tracking iterations — a lost
        # frame here means the edge stepper dropped a rider.
        expected = fleet.successes * steps_per_request
        if fleet.edge_steps != expected:
            violations.append(
                f"edge leg ran {fleet.edge_steps} tracking steps, "
                f"expected {expected} "
                f"({fleet.successes} successes x {steps_per_request})"
            )
    return SoakReport(fleet=fleet, violations=violations)
