"""Async multi-tenant serving gateway with cross-request batching.

The gateway (:class:`ServingGateway`) coalesces concurrent search
requests into single batched plane walks while keeping per-tenant
resilience (deadline, retry, circuit breaker) and admission control.
:func:`run_fleet` drives it with thousands of simulated sessions, and
:func:`run_soak` is the chaos-under-load health gate used by CI.
"""

from repro.gateway.fleet import (
    EdgeStepDriver,
    FleetConfig,
    FleetReport,
    TenantSummary,
    build_frame_pool,
    run_fleet,
)
from repro.gateway.gateway import GatewayConfig, ServingGateway
from repro.gateway.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "EdgeStepDriver",
    "FleetConfig",
    "FleetReport",
    "GatewayConfig",
    "ServingGateway",
    "SoakConfig",
    "SoakReport",
    "TenantSummary",
    "build_frame_pool",
    "run_fleet",
    "run_soak",
]
