"""EMAP reproduction: cloud-edge EEG monitoring and anomaly prediction.

Reimplements Prabakaran et al., *EMAP: A Cloud-Edge Hybrid Framework
for EEG Monitoring and Cross-Correlation Based Real-time Anomaly
Prediction* (DAC 2020), end to end: synthetic EEG corpora, the
mega-database, the cloud cross-correlation search (Algorithm 1), the
edge area-between-curves tracker (Algorithm 2), the network and timing
models, the five Table I baselines, and a per-figure experiment
harness.

Quickstart::

    from repro import PipelineConfig, build_pipeline
    from repro.signals import AnomalyType, EEGGenerator
    from repro.signals.anomalies import AnomalySpec, make_anomalous_signal

    pipeline = build_pipeline(PipelineConfig(mdb_scale=0.3, with_artifacts=False))
    patient = make_anomalous_signal(
        EEGGenerator(seed=7), 160.0,
        AnomalySpec(kind=AnomalyType.SEIZURE, onset_s=150.0),
    )
    session = pipeline.framework.run(patient)
    print(session.final_prediction, session.pa_series[-5:])
"""

from repro.config import Pipeline, PipelineConfig, build_pipeline
from repro.errors import EMAPError
from repro.version import PAPER, __version__

__all__ = [
    "EMAPError",
    "PAPER",
    "Pipeline",
    "PipelineConfig",
    "__version__",
    "build_pipeline",
]
