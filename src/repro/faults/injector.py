"""Fault injector: a chaos proxy in front of the cloud server.

:class:`FaultInjector` wraps anything that serves ``handle_frame``
(the real :class:`~repro.cloud.server.CloudServer`, or another
injector) and applies a :class:`~repro.faults.plan.FaultPlan` to each
call, keyed by the call's index in the session.  It quacks like the
server — ``timing``, ``n_slices``, ``refresh``, ``close`` pass through
— so both runtime loops (and the resilient client) can sit in front of
it unchanged.

All randomness comes from one seeded :class:`numpy.random.Generator`
constructed from the plan, and the generator is only consulted inside
``CORRUPT_RESULT`` windows, so a chaos run replays bit-identically for
a given ``(recording, plan)`` pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.cloud.results import SearchMatch, SearchResult
from repro.errors import CloudUnavailableError, SearchError
from repro.faults.plan import FaultKind, FaultPlan, FaultWindow

if TYPE_CHECKING:  # avoid circular imports with the server/runtime tiers
    from repro.cloud.client import CloudEndpoint
    from repro.runtime.timing import TimingBreakdown, TimingModel
    from repro.signals.types import Frame


class FaultInjector:
    """Applies a fault plan to every cloud call passing through it."""

    def __init__(self, server: CloudEndpoint, plan: FaultPlan | None = None) -> None:
        self.server = server
        self.plan = plan or FaultPlan()
        self._rng = np.random.default_rng(self.plan.seed)
        self.calls_seen = 0
        self.injected = 0

    # -- server passthroughs ------------------------------------------

    @property
    def timing(self) -> TimingModel:
        return self.server.timing

    @property
    def n_slices(self) -> int:
        n: int = getattr(self.server, "n_slices", 0)
        return n

    def refresh(self) -> bool:
        refresher = getattr(self.server, "refresh", None)
        if refresher is None:
            return False
        refreshed: bool = refresher()
        return refreshed

    def close(self) -> None:
        closer = getattr(self.server, "close", None)
        if closer is not None:
            closer()

    # -- the chaos proxy ----------------------------------------------

    def handle_frame(
        self, frame: Frame | np.ndarray
    ) -> tuple[SearchResult, TimingBreakdown]:
        """One cloud call, with this call-index's faults applied."""
        call_index = self.calls_seen
        self.calls_seen += 1
        active = self.plan.active(call_index)

        # Unreachability faults fire before the search ever runs.
        for window in active:
            if window.kind is FaultKind.OUTAGE:
                self._count(window)
                raise CloudUnavailableError(
                    f"injected outage (calls {window.first_call}"
                    f"-{window.last_call}) at call {call_index}"
                )
            if window.kind is FaultKind.TRANSIENT_ERROR:
                self._count(window)
                raise SearchError(
                    f"injected transient search failure at call {call_index}"
                )

        result, breakdown = self.server.handle_frame(frame)

        for window in active:
            if window.kind is FaultKind.DROP_RESULT:
                self._count(window)
                result = self._drop_payload(result)
            elif window.kind is FaultKind.CORRUPT_RESULT:
                self._count(window)
                result = self._corrupt_payload(result, window)
            elif window.kind is FaultKind.LATENCY_SPIKE:
                self._count(window)
                breakdown = self._spike_latency(breakdown, window)
        return result, breakdown

    def _count(self, window: FaultWindow) -> None:
        self.injected += 1
        registry = obs.metrics()
        if registry.enabled:
            registry.inc("faults.injected")
            registry.inc(f"faults.injected.{window.kind.value}")

    @staticmethod
    def _drop_payload(result: SearchResult) -> SearchResult:
        """The payload is lost in transit; search statistics survive."""
        return SearchResult(
            matches=[],
            correlations_evaluated=result.correlations_evaluated,
            slices_searched=result.slices_searched,
            candidates_above_threshold=result.candidates_above_threshold,
            heap_admissions=result.heap_admissions,
            elapsed_s=result.elapsed_s,
            chunk_elapsed_s=list(result.chunk_elapsed_s),
        )

    def _corrupt_payload(
        self, result: SearchResult, window: FaultWindow
    ) -> SearchResult:
        """Scramble a seeded fraction of match offsets out of bounds."""
        if not result.matches:
            return result
        n = len(result.matches)
        n_corrupt = max(1, int(round(window.magnitude * n)))
        victims = set(
            self._rng.choice(n, size=min(n_corrupt, n), replace=False).tolist()
        )
        corrupted: list[SearchMatch] = []
        for position, match in enumerate(result.matches):
            if position in victims:
                # An offset past the slice end is unreachable by any
                # valid sliding window — the client's bounds check
                # catches it, exactly like a checksum would.
                bad_offset = len(match.sig_slice) + int(self._rng.integers(1, 1024))
                match = SearchMatch(
                    sig_slice=match.sig_slice, omega=match.omega, offset=bad_offset
                )
            corrupted.append(match)
        return SearchResult(
            matches=corrupted,
            correlations_evaluated=result.correlations_evaluated,
            slices_searched=result.slices_searched,
            candidates_above_threshold=result.candidates_above_threshold,
            heap_admissions=result.heap_admissions,
            elapsed_s=result.elapsed_s,
            chunk_elapsed_s=list(result.chunk_elapsed_s),
        )

    @staticmethod
    def _spike_latency(
        breakdown: TimingBreakdown, window: FaultWindow
    ) -> TimingBreakdown:
        """Scale every Eq. 4 phase by the window's magnitude."""
        scaled = type(breakdown)(
            upload_s=breakdown.upload_s * window.magnitude,
            search_s=breakdown.search_s * window.magnitude,
            download_s=breakdown.download_s * window.magnitude,
        )
        return scaled
