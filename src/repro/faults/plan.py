"""Deterministic fault plans for chaos runs.

A :class:`FaultPlan` describes *when* the cloud misbehaves and *how*,
as a set of :class:`FaultWindow` entries keyed by **cloud-call index**
(the N-th ``handle_frame`` the session issues).  Call indices — not
wall-clock — are the replayable coordinate: both runtime loops issue
calls at deterministic points of the simulated timeline, so a plan
replays bit-identically regardless of host speed.

Five fault classes cover the failure surface an edge-cloud anomaly
system is evaluated under (arXiv:2401.07717, arXiv:2411.02868):

* ``OUTAGE`` — the endpoint is unreachable; the call raises
  :class:`~repro.errors.CloudUnavailableError`.
* ``LATENCY_SPIKE`` — the call succeeds but every phase of the Eq. 4
  breakdown is scaled by ``magnitude`` (the paper's budgets are ~1 ms
  upload / ~200 ms download; a 50× spike blows the client deadline).
* ``DROP_RESULT`` — the search ran but the result payload is lost in
  transit: matches arrive empty while the search statistics still
  report admitted candidates.
* ``CORRUPT_RESULT`` — match offsets are scrambled past the end of
  their slices (bit corruption the client detects by bounds-checking).
* ``TRANSIENT_ERROR`` — the search itself fails once with a
  :class:`~repro.errors.SearchError` (e.g. a crashed worker).

Plans are generated from a :class:`numpy.random.Generator` seed, so a
chaos run is a pure function of ``(recording, plan)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import FaultPlanError


class FaultKind(Enum):
    """The injectable failure classes."""

    OUTAGE = "outage"
    LATENCY_SPIKE = "latency_spike"
    DROP_RESULT = "drop_result"
    CORRUPT_RESULT = "corrupt_result"
    TRANSIENT_ERROR = "transient_error"


@dataclass(frozen=True)
class FaultWindow:
    """One fault active over an inclusive range of cloud-call indices."""

    kind: FaultKind
    first_call: int
    last_call: int
    #: Latency multiplier for ``LATENCY_SPIKE``; fraction of matches
    #: corrupted for ``CORRUPT_RESULT``; ignored by the other kinds.
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.first_call < 0:
            raise FaultPlanError(
                f"fault window must start at call >= 0, got {self.first_call}"
            )
        if self.last_call < self.first_call:
            raise FaultPlanError(
                f"fault window ends ({self.last_call}) before it starts "
                f"({self.first_call})"
            )
        if self.magnitude <= 0:
            raise FaultPlanError(
                f"fault magnitude must be positive, got {self.magnitude}"
            )
        if self.kind is FaultKind.CORRUPT_RESULT and self.magnitude > 1.0:
            raise FaultPlanError(
                "corruption magnitude is a fraction of matches, must be "
                f"<= 1, got {self.magnitude}"
            )

    def covers(self, call_index: int) -> bool:
        """Whether this window is active for the given call."""
        return self.first_call <= call_index <= self.last_call


@dataclass(frozen=True)
class FaultPlan:
    """A replayable chaos schedule: fault windows + the injector seed.

    ``seed`` feeds the injector's own :class:`numpy.random.Generator`
    (used to pick which matches a ``CORRUPT_RESULT`` window scrambles),
    so two injectors built from equal plans corrupt identically.
    """

    windows: tuple[FaultWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultPlanError(f"plan seed must be non-negative, got {self.seed}")

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def enabled(self) -> bool:
        """Whether the plan injects anything at all."""
        return bool(self.windows)

    def active(self, call_index: int) -> tuple[FaultWindow, ...]:
        """All windows covering the given cloud-call index."""
        if call_index < 0:
            raise FaultPlanError(
                f"call index must be non-negative, got {call_index}"
            )
        return tuple(w for w in self.windows if w.covers(call_index))

    def last_faulty_call(self) -> int:
        """The highest call index any window covers (-1 for an empty plan)."""
        if not self.windows:
            return -1
        return max(w.last_call for w in self.windows)

    # -- convenience builders -----------------------------------------

    @classmethod
    def single(
        cls,
        kind: FaultKind,
        first_call: int,
        last_call: int | None = None,
        magnitude: float = 1.0,
        seed: int = 0,
    ) -> FaultPlan:
        """A plan with one window (``last_call`` defaults to ``first_call``)."""
        window = FaultWindow(
            kind=kind,
            first_call=first_call,
            last_call=first_call if last_call is None else last_call,
            magnitude=magnitude,
        )
        return cls(windows=(window,), seed=seed)

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_calls: int,
        fault_rate: float = 0.2,
        kinds: tuple[FaultKind, ...] = tuple(FaultKind),
        max_window_calls: int = 4,
        latency_magnitude: float = 50.0,
    ) -> FaultPlan:
        """Draw a random plan from a seeded generator.

        ``fault_rate`` is the expected fraction of the call horizon
        covered by fault windows; window starts are uniform over the
        horizon and lengths geometric with mean ``max_window_calls / 2``
        (clamped to ``max_window_calls``).  Equal arguments produce an
        equal plan, bit for bit.
        """
        if horizon_calls < 1:
            raise FaultPlanError(
                f"call horizon must be >= 1, got {horizon_calls}"
            )
        if not (0.0 <= fault_rate <= 1.0):
            raise FaultPlanError(
                f"fault rate must be in [0, 1], got {fault_rate}"
            )
        if not kinds:
            raise FaultPlanError("need at least one fault kind to generate")
        if max_window_calls < 1:
            raise FaultPlanError(
                f"max window length must be >= 1, got {max_window_calls}"
            )
        rng = np.random.default_rng(seed)
        mean_window = max(1.0, max_window_calls / 2.0)
        n_windows = int(round(fault_rate * horizon_calls / mean_window))
        windows: list[FaultWindow] = []
        for _ in range(n_windows):
            kind = kinds[int(rng.integers(len(kinds)))]
            first = int(rng.integers(horizon_calls))
            length = min(int(rng.geometric(1.0 / mean_window)), max_window_calls)
            last = min(first + length - 1, horizon_calls - 1)
            magnitude = 1.0
            if kind is FaultKind.LATENCY_SPIKE:
                magnitude = latency_magnitude * float(rng.uniform(0.5, 1.5))
            elif kind is FaultKind.CORRUPT_RESULT:
                magnitude = float(rng.uniform(0.25, 1.0))
            windows.append(
                FaultWindow(
                    kind=kind, first_call=first, last_call=last, magnitude=magnitude
                )
            )
        return cls(windows=tuple(windows), seed=seed)
