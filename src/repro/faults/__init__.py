"""Seeded, deterministic fault injection for chaos runs.

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultWindow`:
  a replayable schedule of cloud outages, latency spikes, dropped and
  corrupted result payloads, and transient search errors, keyed by
  cloud-call index and generated from a ``numpy.random.Generator``
  seed.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: a chaos
  proxy that applies a plan in front of any ``handle_frame`` server.

The resilient counterpart — deadlines, retries, the circuit breaker —
lives in :mod:`repro.cloud.client`; the chaos suite
(``tests/test_faults_chaos.py``, ``-m chaos``) drives both.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultWindow

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultWindow",
]
