"""Mega-database composition statistics and reporting.

Operating EMAP requires knowing what the MDB actually holds: the
per-dataset and per-label composition, amplitude statistics (the area
threshold's meaning depends on them), and slice-length uniformity.
:func:`describe` computes the full profile; :func:`composition_report`
renders it as text for logs and notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MDBError
from repro.eval.reporting import format_table
from repro.mdb.mdb import MegaDatabase


@dataclass
class MDBProfile:
    """Aggregate statistics of one mega-database."""

    total_slices: int = 0
    label_counts: dict[str, int] = field(default_factory=dict)
    dataset_counts: dict[str, int] = field(default_factory=dict)
    dataset_anomalous: dict[str, int] = field(default_factory=dict)
    slice_lengths: set[int] = field(default_factory=set)
    mean_rms_uv: float = 0.0
    rms_spread_uv: float = 0.0

    @property
    def anomalous_fraction(self) -> float:
        anomalous = sum(
            count for label, count in self.label_counts.items() if label != "none"
        )
        if self.total_slices == 0:
            raise MDBError("profile is empty")
        return anomalous / self.total_slices

    @property
    def is_length_uniform(self) -> bool:
        """Whether every slice has the same sample count (it must)."""
        return len(self.slice_lengths) == 1


def describe(mdb: MegaDatabase) -> MDBProfile:
    """Profile an MDB in one pass over its slices."""
    profile = MDBProfile()
    rms_values: list[float] = []
    for sig_slice in mdb.slices():
        profile.total_slices += 1
        label = sig_slice.label.value
        profile.label_counts[label] = profile.label_counts.get(label, 0) + 1
        dataset = sig_slice.source.split("/", 1)[0]
        profile.dataset_counts[dataset] = profile.dataset_counts.get(dataset, 0) + 1
        if sig_slice.label.is_anomalous:
            profile.dataset_anomalous[dataset] = (
                profile.dataset_anomalous.get(dataset, 0) + 1
            )
        profile.slice_lengths.add(len(sig_slice))
        centered = sig_slice.data - sig_slice.data.mean()
        rms_values.append(float(np.sqrt(np.mean(centered**2))))
    if profile.total_slices == 0:
        raise MDBError("cannot profile an empty mega-database")
    profile.mean_rms_uv = float(np.mean(rms_values))
    profile.rms_spread_uv = float(np.std(rms_values))
    return profile


def composition_report(profile: MDBProfile) -> str:
    """Render a profile as an aligned text report."""
    rows = []
    for dataset in sorted(profile.dataset_counts):
        total = profile.dataset_counts[dataset]
        anomalous = profile.dataset_anomalous.get(dataset, 0)
        rows.append(
            [dataset, total, anomalous, anomalous / total if total else 0.0]
        )
    table = format_table(
        ["dataset", "slices", "anomalous", "anomalous_frac"],
        rows,
        precision=2,
        title="Mega-database composition",
    )
    labels = ", ".join(
        f"{label}={count}" for label, count in sorted(profile.label_counts.items())
    )
    footer = (
        f"\ntotal: {profile.total_slices} slices ({labels})"
        f"\nanomalous fraction: {profile.anomalous_fraction:.2f}"
        f"\nslice RMS: {profile.mean_rms_uv:.1f} ± {profile.rms_spread_uv:.1f} µV"
        f"\nuniform slice length: {profile.is_length_uniform}"
    )
    return table + footer
