"""MDB construction pipeline (paper Section V-B, first half).

For every record of every registered corpus:

1. **resample** to the 256 Hz base frequency,
2. **bandpass filter** with the same 100-tap 11–40 Hz FIR the edge
   applies to its input ("all the signals in the dataset are also
   bandpass filtered to ensure consistency, uniformity, and ease of
   search"),
3. **slice** into 1000-sample signal-sets,
4. **label** each slice normal/anomalous,
5. **insert** the slice document into the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import CorpusRegistry
from repro.errors import MDBError
from repro.mdb.mdb import MegaDatabase
from repro.mdb.schema import slice_to_document
from repro.signals.filters import BandpassFilter, FilterSpec
from repro.signals.resample import resample_to
from repro.signals.slicing import slice_signal
from repro.signals.types import BASE_SAMPLE_RATE_HZ, SLICE_SAMPLES, Signal


@dataclass
class BuildReport:
    """What one build pass ingested."""

    records_ingested: int = 0
    slices_inserted: int = 0
    anomalous_slices: int = 0
    per_dataset: dict[str, int] = field(default_factory=dict)

    @property
    def normal_slices(self) -> int:
        return self.slices_inserted - self.anomalous_slices

    def summary(self) -> str:
        """One-line human-readable report."""
        datasets = ", ".join(
            f"{name}={count}" for name, count in sorted(self.per_dataset.items())
        )
        return (
            f"{self.records_ingested} records -> {self.slices_inserted} slices "
            f"({self.anomalous_slices} anomalous, {self.normal_slices} normal) "
            f"[{datasets}]"
        )


class MDBBuilder:
    """Builds a :class:`MegaDatabase` from corpus registries or records."""

    def __init__(
        self,
        mdb: MegaDatabase | None = None,
        filter_spec: FilterSpec | None = None,
        slice_samples: int = SLICE_SAMPLES,
        slice_stride: int | None = None,
    ) -> None:
        if slice_samples <= 0:
            raise MDBError(f"slice size must be positive, got {slice_samples}")
        self.mdb = mdb or MegaDatabase()
        self._bandpass = BandpassFilter(filter_spec)
        self.slice_samples = slice_samples
        self.slice_stride = slice_stride

    def ingest_record(self, record: Signal, report: BuildReport | None = None) -> int:
        """Run one record through the full pipeline; returns slices added."""
        base = resample_to(record, BASE_SAMPLE_RATE_HZ)
        filtered = self._bandpass.apply_signal(base)
        dataset = record.source.split("/", 1)[0]
        inserted = 0
        for sig_slice in slice_signal(
            filtered, slice_samples=self.slice_samples, stride=self.slice_stride
        ):
            document = slice_to_document(sig_slice, dataset, record.channel)
            self.mdb.insert_document(document)
            inserted += 1
            if report is not None:
                report.slices_inserted += 1
                report.anomalous_slices += sig_slice.attribute
                report.per_dataset[dataset] = report.per_dataset.get(dataset, 0) + 1
        if report is not None:
            report.records_ingested += 1
        return inserted

    def build(self, registry: CorpusRegistry) -> BuildReport:
        """Ingest every record of every corpus in the registry."""
        report = BuildReport()
        for corpus in registry:
            for record in corpus.records():
                self.ingest_record(record, report)
        if report.slices_inserted == 0:
            raise MDBError(
                "build produced no signal-sets; records may be shorter than "
                f"one slice ({self.slice_samples} samples at "
                f"{BASE_SAMPLE_RATE_HZ:.0f} Hz)"
            )
        return report
