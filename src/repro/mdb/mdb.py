"""The MegaDatabase facade over the embedded document store.

Provides typed access to signal-set documents: label-filtered queries,
random subsets for the scaling experiments (Fig. 7b), statistics, and
save/load via the store's JSON-lines persistence.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import MDBError
from repro.mdb.schema import SLICE_COLLECTION, slice_from_document
from repro.signals.types import AnomalyType, SignalSlice
from repro.storage.persistence import load_store, save_store
from repro.storage.store import Collection, DocumentStore


class MegaDatabase:
    """Labelled signal-sets, backed by a :class:`DocumentStore`."""

    def __init__(self, store: DocumentStore | None = None) -> None:
        self.store = store or DocumentStore("emap")
        collection = self.store.collection(SLICE_COLLECTION)
        for fieldname in ("label", "dataset", "anomalous"):
            if fieldname not in collection.indexed_fields:
                collection.create_index(fieldname)

    @property
    def _slices(self) -> Collection:
        return self.store.collection(SLICE_COLLECTION)

    def __len__(self) -> int:
        return len(self._slices)

    @property
    def generation(self) -> int:
        """Monotonic data version of the signal-set collection.

        Bumped by every insert/update/delete/clear; the cloud tier's
        compiled search plane (and ``CloudServer.refresh``) compare it
        to decide when their materialised snapshot is stale.
        """
        return self._slices.data_version

    # -- writes ------------------------------------------------------

    def insert_document(self, document: Mapping[str, Any]) -> None:
        """Insert a prepared slice document (see :mod:`repro.mdb.schema`)."""
        samples = document.get("samples")
        if samples is None or np.asarray(samples).ndim != 1:
            raise MDBError("slice document must carry a 1-D 'samples' array")
        self._slices.insert_one(document)

    def clear(self) -> None:
        """Remove every signal-set."""
        self._slices.clear()

    # -- reads -------------------------------------------------------

    def slices(
        self,
        label: AnomalyType | None = None,
        dataset: str | None = None,
        limit: int | None = None,
    ) -> Iterator[SignalSlice]:
        """Iterate signal-sets, optionally filtered by label or dataset."""
        query: dict[str, Any] = {}
        if label is not None:
            query["label"] = label.value
        if dataset is not None:
            query["dataset"] = dataset
        for document in self._slices.find(query, limit=limit):
            yield slice_from_document(document)

    def subset(self, n_slices: int, seed: int = 0) -> list[SignalSlice]:
        """A deterministic random subset of ``n_slices`` signal-sets.

        Used by the Fig. 7(b) scaling experiment to search databases of
        controlled size.  Sampling is without replacement when the MDB
        is large enough, otherwise the full set is cycled.
        """
        if n_slices <= 0:
            raise MDBError(f"subset size must be positive, got {n_slices}")
        all_slices = list(self.slices())
        if not all_slices:
            raise MDBError("cannot subset an empty mega-database")
        rng = np.random.default_rng(seed)
        if n_slices <= len(all_slices):
            picks = rng.choice(len(all_slices), size=n_slices, replace=False)
        else:
            picks = rng.choice(len(all_slices), size=n_slices, replace=True)
        return [all_slices[i] for i in picks]

    def count(self, label: AnomalyType | None = None) -> int:
        """Number of signal-sets, optionally for one label."""
        if label is None:
            return len(self._slices)
        return self._slices.count({"label": label.value})

    def anomalous_fraction(self) -> float:
        """Fraction of signal-sets with ``A(S) = 1``."""
        total = len(self._slices)
        if total == 0:
            raise MDBError("mega-database is empty")
        return self._slices.count({"anomalous": 1}) / total

    def label_counts(self) -> dict[str, int]:
        """Signal-set count per anomaly label value."""
        return {
            str(value): self._slices.count({"label": value})
            for value in self._slices.distinct("label")
        }

    def datasets(self) -> list[str]:
        """Names of the source datasets present."""
        return sorted(str(value) for value in self._slices.distinct("dataset"))

    # -- persistence ---------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Persist to a directory of JSON-lines files."""
        return save_store(self.store, directory)

    @classmethod
    def load(cls, directory: str | Path) -> "MegaDatabase":
        """Load an MDB previously written by :meth:`save`."""
        return cls(store=load_store(directory))
