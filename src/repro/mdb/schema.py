"""Document schema for mega-database signal-sets.

Each MDB document stores one :class:`~repro.signals.types.SignalSlice`:

.. code-block:: python

    {
        "_id": ObjectId,
        "slice_id": "physionet-chb/rec0003/Fp2/1",
        "label": "seizure",          # AnomalyType value
        "anomalous": 1,              # A(S), denormalised for queries
        "dataset": "physionet-chb",
        "source": "physionet-chb/rec0003",
        "channel": "Fp2",
        "start_sample": 1000,
        "samples": np.ndarray,       # 1000 float64 µV samples
    }
"""

from __future__ import annotations

from typing import Any, Mapping, TypedDict

import numpy as np

from repro.errors import MDBError
from repro.signals.types import AnomalyType, SignalSlice

#: Name of the document-store collection holding signal-sets.
SLICE_COLLECTION = "signal_sets"


class SliceDocument(TypedDict):
    """Typed shape of one signal-set document (pre-insert, no ``_id``)."""

    slice_id: str
    label: str
    anomalous: int
    dataset: str
    source: str
    channel: str
    start_sample: int
    samples: np.ndarray


def slice_to_document(
    sig_slice: SignalSlice, dataset: str, channel: str
) -> SliceDocument:
    """Convert a signal-set into its MDB document."""
    return {
        "slice_id": sig_slice.slice_id,
        "label": sig_slice.label.value,
        "anomalous": sig_slice.attribute,
        "dataset": dataset,
        "source": sig_slice.source,
        "channel": channel,
        "start_sample": sig_slice.start_sample,
        "samples": np.asarray(sig_slice.data, dtype=np.float64),
    }


def slice_from_document(document: Mapping[str, Any]) -> SignalSlice:
    """Reconstruct a signal-set from its MDB document."""
    try:
        label = AnomalyType(document["label"])
        samples = np.asarray(document["samples"], dtype=np.float64)
        return SignalSlice(
            data=samples,
            label=label,
            source=str(document["source"]),
            start_sample=int(document["start_sample"]),
            slice_id=str(document["slice_id"]),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise MDBError(f"malformed signal-set document: {error}") from error
