"""The mega-database (MDB): labelled signal-sets in the document store.

Implements Section V-B's first half: combining the corpora into a
single searchable database of 1000-sample, bandpass-filtered, 256 Hz
signal-sets, each carrying the anomaly attribute ``A(S)`` and full
provenance metadata.
"""

from repro.mdb.builder import BuildReport, MDBBuilder
from repro.mdb.mdb import MegaDatabase
from repro.mdb.schema import SLICE_COLLECTION, slice_from_document, slice_to_document
from repro.mdb.stats import MDBProfile, composition_report, describe

__all__ = [
    "BuildReport",
    "MDBBuilder",
    "MDBProfile",
    "MegaDatabase",
    "SLICE_COLLECTION",
    "composition_report",
    "describe",
    "slice_from_document",
    "slice_to_document",
]
