"""Zwoliński open epilepsy database-style corpus (paper ref [25]).

The Zwoliński et al. open database pairs epileptic EEG with MRI and
post-operative assessment; clinically it also contains vascular
pathology.  In this reproduction it is the corpus that contributes the
*stroke* examples (the paper notes stroke/encephalopathy data lack onset
annotation, so whole records are labelled anomalous).  500 Hz native
rate exercises the 500→256 Hz downsampler.
"""

from __future__ import annotations

from repro.datasets.base import CorpusSpec
from repro.signals.types import AnomalyType


def zwolinski_like_spec(n_records: int = 30, record_duration_s: float = 40.0) -> CorpusSpec:
    """Spec for the Zwoliński-style corpus."""
    return CorpusSpec(
        name="zwolinski",
        sample_rate_hz=500.0,
        n_records=n_records,
        record_duration_s=record_duration_s,
        anomaly_mix={
            AnomalyType.SEIZURE: 0.25,
            AnomalyType.STROKE: 0.35,
        },
        annotated_onsets=False,
        channels=("F3", "F4", "P3", "P4"),
        background_rms_uv=31.0,
        with_artifacts=True,
    )
