"""Synthetic corpus machinery shared by the five dataset stand-ins.

A :class:`CorpusSpec` pins down everything that distinguishes one
source corpus from another; :class:`SyntheticCorpus` turns a spec into a
deterministic stream of :class:`~repro.signals.types.Signal` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.signals.anomalies import AnomalySpec, inject_anomaly
from repro.signals.artifacts import ArtifactSpec, add_artifacts
from repro.signals.generator import BackgroundSpec, EEGGenerator
from repro.signals.types import AnomalyType, Signal


@dataclass(frozen=True)
class CorpusSpec:
    """Static description of one synthetic corpus.

    Parameters
    ----------
    name:
        Corpus identifier (used in slice provenance strings).
    sample_rate_hz:
        Native sampling rate — deliberately different per corpus so the
        MDB build exercises the resampling path.
    n_records:
        Number of records the corpus yields.
    record_duration_s:
        Length of each record.
    anomaly_mix:
        Fraction of records per anomaly type; fractions must sum to at
        most 1, with the remainder normal.
    annotated_onsets:
        Whether anomalous records carry a mid-record onset annotation
        (seizure-style) or are labelled anomalous in their entirety
        (the paper's encephalopathy/stroke handling).
    onset_range_s:
        For annotated records, the uniform range the onset is drawn
        from (relative to record start).
    channels:
        Channel names cycled across records.
    background_rms_uv:
        Per-corpus background amplitude (subject/hardware variation).
    with_artifacts:
        Whether raw records include ocular/EMG/mains artifacts.
    """

    name: str
    sample_rate_hz: float
    n_records: int
    record_duration_s: float
    anomaly_mix: dict[AnomalyType, float] = field(default_factory=dict)
    annotated_onsets: bool = False
    onset_range_s: tuple[float, float] = (0.5, 0.9)
    channels: tuple[str, ...] = ("Fp1", "Fp2", "C3", "C4")
    background_rms_uv: float = 30.0
    with_artifacts: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise DatasetError("corpus name must be non-empty")
        if self.sample_rate_hz <= 0:
            raise DatasetError(
                f"sample rate must be positive, got {self.sample_rate_hz}"
            )
        if self.n_records < 0:
            raise DatasetError(f"record count must be non-negative, got {self.n_records}")
        if self.record_duration_s <= 0:
            raise DatasetError(
                f"record duration must be positive, got {self.record_duration_s}"
            )
        total = sum(self.anomaly_mix.values())
        if total > 1.0 + 1e-9:
            raise DatasetError(f"anomaly mix sums to {total}, must be <= 1")
        for kind, fraction in self.anomaly_mix.items():
            if not kind.is_anomalous:
                raise DatasetError(f"anomaly mix contains non-anomalous kind {kind}")
            if fraction < 0:
                raise DatasetError(f"anomaly fraction must be non-negative, got {fraction}")
        if not self.channels:
            raise DatasetError("corpus needs at least one channel")
        low, high = self.onset_range_s
        if not (0.0 <= low <= high <= 1.0):
            raise DatasetError(
                f"onset range must satisfy 0 <= low <= high <= 1, got {self.onset_range_s}"
            )


class SyntheticCorpus:
    """Deterministic record stream for one corpus spec.

    Record labels are assigned by deterministic proportion (not by
    random draw), so a corpus of 20 records with a 0.5 seizure mix
    always yields exactly 10 seizure records.
    """

    def __init__(self, spec: CorpusSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def _label_plan(self) -> list[AnomalyType]:
        """Per-record labels honouring the mix proportions exactly."""
        plan: list[AnomalyType] = []
        for kind, fraction in sorted(
            self.spec.anomaly_mix.items(), key=lambda item: item[0].value
        ):
            plan.extend([kind] * int(round(fraction * self.spec.n_records)))
        plan = plan[: self.spec.n_records]
        plan.extend([AnomalyType.NONE] * (self.spec.n_records - len(plan)))
        # Interleave deterministically so labels don't cluster at the front.
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(plan))
        return [plan[i] for i in order]

    def record(self, index: int) -> Signal:
        """Generate record ``index`` (deterministic per corpus seed)."""
        if not (0 <= index < self.spec.n_records):
            raise DatasetError(
                f"record index {index} outside corpus of {self.spec.n_records} records"
            )
        label = self._label_plan()[index]
        rng_seed = (self.seed, index)
        background_spec = BackgroundSpec(
            sample_rate_hz=self.spec.sample_rate_hz,
            rms_uv=self.spec.background_rms_uv,
        )
        generator = EEGGenerator(
            background_spec, seed=abs(hash(rng_seed)) % (2**32)
        )
        data = generator.background(self.spec.record_duration_s)
        onset_sample: int | None = None
        label_start_sample: int | None = None
        anomalous_spans: tuple[tuple[int, int], ...] | None = None
        if label.is_anomalous:
            onset_s: float | None = None
            if self.spec.annotated_onsets:
                low, high = self.spec.onset_range_s
                onset_s = self.spec.record_duration_s * generator.rng.uniform(low, high)
            anomaly = AnomalySpec(kind=label, onset_s=onset_s)
            injected = inject_anomaly(
                data, anomaly, self.spec.sample_rate_hz, generator.rng
            )
            data = injected.data
            onset_sample = injected.onset_sample
            label_start_sample = injected.label_start_sample
            anomalous_spans = injected.anomalous_spans
        if self.spec.with_artifacts:
            data = add_artifacts(
                data, self.spec.sample_rate_hz, generator.rng, ArtifactSpec()
            )
        channel = self.spec.channels[index % len(self.spec.channels)]
        return Signal(
            data=data,
            sample_rate_hz=self.spec.sample_rate_hz,
            label=label,
            channel=channel,
            source=f"{self.spec.name}/rec{index:04d}",
            onset_sample=onset_sample,
            label_start_sample=label_start_sample,
            anomalous_spans=anomalous_spans,
        )

    def records(self) -> Iterator[Signal]:
        """Iterate all records in index order."""
        for index in range(self.spec.n_records):
            yield self.record(index)

    def __len__(self) -> int:
        return self.spec.n_records
