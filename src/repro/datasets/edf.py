"""Minimal EDF-style binary container (pyedflib stand-in).

The paper ingests recordings with ``spyedflib``; this module provides a
compact binary format with the load-bearing EDF properties: a fixed
header (magic, rate, channel labels, per-channel physical scaling and
anomaly annotations) followed by contiguous int16 sample records.
Quantisation to int16 with per-channel gain mirrors real EDF's
digital/physical mapping, so the ingest path sees realistic ~µV-LSB
rounding.

Format (little-endian)::

    magic     4s   b"SEDF"
    version   H    1
    n_chan    H
    rate      d    Hz
    n_samp    Q    samples per channel
    per channel:
        label     16s  channel name, NUL padded
        anomaly   16s  anomaly type name, NUL padded
        onset     q    onset sample (-1 when absent)
        gain      d    physical µV per digital unit
        data      n_samp * h
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import EDFError
from repro.signals.types import AnomalyType, Signal

_MAGIC = b"SEDF"
_VERSION = 1
_HEADER = struct.Struct("<4sHHdQ")
_CHANNEL_HEADER = struct.Struct("<16s16sqd")

#: int16 digital range used for quantisation.
_DIGITAL_MAX = 32767


def _pack_name(name: str) -> bytes:
    encoded = name.encode("ascii", errors="replace")[:16]
    return encoded.ljust(16, b"\x00")


def _unpack_name(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("ascii", errors="replace")


def write_edf(path: str | Path, signals: list[Signal]) -> Path:
    """Write one or more equal-rate, equal-length channels to ``path``."""
    if not signals:
        raise EDFError("cannot write an EDF file with no channels")
    rate = signals[0].sample_rate_hz
    length = len(signals[0])
    for sig in signals[1:]:
        if abs(sig.sample_rate_hz - rate) > 1e-9:
            raise EDFError("all channels must share one sampling rate")
        if len(sig) != length:
            raise EDFError("all channels must have equal length")

    destination = Path(path)
    with destination.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, len(signals), rate, length))
        for sig in signals:
            peak = float(np.max(np.abs(sig.data)))
            gain = (peak / _DIGITAL_MAX) if peak > 0 else 1.0
            digital = np.clip(
                np.round(sig.data / gain), -_DIGITAL_MAX - 1, _DIGITAL_MAX
            ).astype("<i2")
            onset = -1 if sig.onset_sample is None else sig.onset_sample
            handle.write(
                _CHANNEL_HEADER.pack(
                    _pack_name(sig.channel),
                    _pack_name(sig.label.value),
                    onset,
                    gain,
                )
            )
            handle.write(digital.tobytes())
    return destination


def read_edf(path: str | Path, source: str | None = None) -> list[Signal]:
    """Read every channel of an EDF-style file back as Signals."""
    origin = Path(path)
    if not origin.exists():
        raise EDFError(f"no such EDF file: {origin}")
    blob = origin.read_bytes()
    if len(blob) < _HEADER.size:
        raise EDFError(f"{origin}: truncated header")
    magic, version, n_chan, rate, n_samp = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise EDFError(f"{origin}: bad magic {magic!r}")
    if version != _VERSION:
        raise EDFError(f"{origin}: unsupported version {version}")
    if rate <= 0:
        raise EDFError(f"{origin}: invalid sampling rate {rate}")

    offset = _HEADER.size
    data_bytes = n_samp * 2
    signals: list[Signal] = []
    for channel_index in range(n_chan):
        if offset + _CHANNEL_HEADER.size + data_bytes > len(blob):
            raise EDFError(
                f"{origin}: truncated channel {channel_index} "
                f"(need {data_bytes} data bytes)"
            )
        label_raw, anomaly_raw, onset, gain = _CHANNEL_HEADER.unpack_from(blob, offset)
        offset += _CHANNEL_HEADER.size
        digital = np.frombuffer(blob, dtype="<i2", count=n_samp, offset=offset)
        offset += data_bytes
        anomaly_name = _unpack_name(anomaly_raw)
        try:
            label = AnomalyType(anomaly_name)
        except ValueError:
            raise EDFError(
                f"{origin}: channel {channel_index} has unknown anomaly "
                f"label {anomaly_name!r}"
            ) from None
        signals.append(
            Signal(
                data=digital.astype(np.float64) * gain,
                sample_rate_hz=rate,
                label=label,
                channel=_unpack_name(label_raw),
                source=source or origin.stem,
                onset_sample=None if onset < 0 else int(onset),
            )
        )
    return signals
