"""UCI / Bonn-style corpus (paper ref [23]).

The UCI Epileptic Seizure Recognition dataset derives from the Bonn
University recordings: short single-channel segments at the distinctive
173.61 Hz rate, labelled seizure or non-seizure per segment with no
onset annotation.  The stand-in mirrors: the odd rate (exercising the
rational-approximation resampler), short segments, whole-record labels,
and a 40 % seizure share.
"""

from __future__ import annotations

from repro.datasets.base import CorpusSpec
from repro.signals.types import AnomalyType


def uci_like_spec(n_records: int = 40, record_duration_s: float = 23.6) -> CorpusSpec:
    """Spec for the UCI/Bonn-style corpus."""
    return CorpusSpec(
        name="uci-bonn",
        sample_rate_hz=173.61,
        n_records=n_records,
        record_duration_s=record_duration_s,
        anomaly_mix={AnomalyType.SEIZURE: 0.4},
        annotated_onsets=False,
        channels=("Cz",),
        background_rms_uv=34.0,
        with_artifacts=False,
    )
