"""BNCI Horizon 2020-style corpus (paper ref [24]).

The BNCI Horizon collection gathers brain-computer-interface recordings
from healthy subjects, typically at 512 Hz.  Its role in the MDB is to
supply *normal* waveform diversity, so the stand-in is all-normal at
512 Hz (exercising the downsampling path) with strong sensorimotor
rhythms — which is exactly the structure BCI paradigms elicit.
"""

from __future__ import annotations

from repro.datasets.base import CorpusSpec


def bnci_like_spec(n_records: int = 24, record_duration_s: float = 30.0) -> CorpusSpec:
    """Spec for the BNCI-style corpus (all normal records)."""
    return CorpusSpec(
        name="bnci-horizon",
        sample_rate_hz=512.0,
        n_records=n_records,
        record_duration_s=record_duration_s,
        anomaly_mix={},
        annotated_onsets=False,
        channels=("C3", "Cz", "C4"),
        background_rms_uv=24.0,
        with_artifacts=True,
    )
