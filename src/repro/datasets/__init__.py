"""Dataset substrate: synthetic stand-ins for the paper's five corpora.

The paper's mega-database combines five open-access EEG corpora
(PhysioNet [21], TUH EEG [22], UCI/Bonn [23], BNCI Horizon [24],
Zwoliński [25]).  Those cannot ship offline, so each is replaced by a
parameterised synthetic corpus with the source's distinguishing
characteristics — native sampling rate, record length, channel montage
and anomaly mix — driving the identical ingest path
(EDF-style records → resample → bandpass → slice → label → MDB).
"""

from repro.datasets.base import CorpusSpec, SyntheticCorpus
from repro.datasets.edf import EDFError, read_edf, write_edf
from repro.datasets.registry import (
    CorpusRegistry,
    default_registry,
    scaled_registry,
)

__all__ = [
    "CorpusRegistry",
    "CorpusSpec",
    "EDFError",
    "SyntheticCorpus",
    "default_registry",
    "read_edf",
    "scaled_registry",
    "write_edf",
]
