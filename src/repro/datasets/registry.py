"""Registry of the five corpus stand-ins (the super-set ``D`` of §V-B).

The paper defines ``D = {D1, ..., DX}`` as the super-set of datasets
feeding the MDB.  :func:`default_registry` returns all five stand-ins
at their default sizes; :func:`scaled_registry` scales record counts up
or down so tests run on small MDBs while benchmarks can build the
8000-slice databases of Fig. 7(b).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.datasets.base import CorpusSpec, SyntheticCorpus
from repro.datasets.bnci_like import bnci_like_spec
from repro.datasets.physionet_like import physionet_like_spec
from repro.datasets.tuh_like import tuh_like_spec
from repro.datasets.uci_like import uci_like_spec
from repro.datasets.zwolinski_like import zwolinski_like_spec
from repro.errors import DatasetError

#: Factories for the five corpora, keyed by corpus name.
SPEC_FACTORIES: dict[str, Callable[[], CorpusSpec]] = {
    "physionet-chb": physionet_like_spec,
    "tuh-eeg": tuh_like_spec,
    "uci-bonn": uci_like_spec,
    "bnci-horizon": bnci_like_spec,
    "zwolinski": zwolinski_like_spec,
}


class CorpusRegistry:
    """A named collection of corpora with per-corpus seeds."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._corpora: dict[str, SyntheticCorpus] = {}

    def register(self, spec: CorpusSpec) -> SyntheticCorpus:
        """Add a corpus; seeds derive from the registry seed and name."""
        if spec.name in self._corpora:
            raise DatasetError(f"corpus {spec.name!r} already registered")
        corpus_seed = self.seed * 1000 + len(self._corpora)
        corpus = SyntheticCorpus(spec, seed=corpus_seed)
        self._corpora[spec.name] = corpus
        return corpus

    def get(self, name: str) -> SyntheticCorpus:
        try:
            return self._corpora[name]
        except KeyError:
            known = ", ".join(self._corpora) or "(none)"
            raise DatasetError(
                f"unknown corpus {name!r}; registered: {known}"
            ) from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._corpora)

    def __iter__(self) -> Iterator[SyntheticCorpus]:
        return iter(self._corpora.values())

    def __len__(self) -> int:
        return len(self._corpora)

    def total_records(self) -> int:
        """Total records across all corpora."""
        return sum(len(corpus) for corpus in self)


def default_registry(seed: int = 0) -> CorpusRegistry:
    """All five corpora at their default sizes."""
    registry = CorpusRegistry(seed=seed)
    for factory in SPEC_FACTORIES.values():
        registry.register(factory())
    return registry


def scaled_registry(
    scale: float = 1.0, seed: int = 0, with_artifacts: bool | None = None
) -> CorpusRegistry:
    """All five corpora with record counts scaled by ``scale``.

    Each corpus keeps at least one record so every ingest path stays
    exercised even at tiny scales.  ``with_artifacts`` overrides the
    per-corpus artifact setting when given (tests use ``False`` for
    speed and determinism).
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    from dataclasses import replace

    registry = CorpusRegistry(seed=seed)
    for factory in SPEC_FACTORIES.values():
        spec = factory()
        updates: dict[str, object] = {
            "n_records": max(1, int(round(spec.n_records * scale)))
        }
        if with_artifacts is not None:
            updates["with_artifacts"] = with_artifacts
        registry.register(replace(spec, **updates))
    return registry
