"""TUH EEG Corpus-style corpus (paper ref [22]).

The Temple University Hospital EEG Corpus is the largest open clinical
EEG archive: heterogeneous adult recordings at mostly 250 Hz covering a
broad pathology mix.  It is the paper's main source of *encephalopathy*
examples.  The stand-in mirrors: 250 Hz (exercises the 250→256 Hz
upsampling path), a clinical mix of normal, seizure and encephalopathy
records, and whole-record anomaly labels (TUH session-level reports).
"""

from __future__ import annotations

from repro.datasets.base import CorpusSpec
from repro.signals.types import AnomalyType


def tuh_like_spec(n_records: int = 30, record_duration_s: float = 40.0) -> CorpusSpec:
    """Spec for the TUH-style corpus."""
    return CorpusSpec(
        name="tuh-eeg",
        sample_rate_hz=250.0,
        n_records=n_records,
        record_duration_s=record_duration_s,
        anomaly_mix={
            AnomalyType.SEIZURE: 0.2,
            AnomalyType.ENCEPHALOPATHY: 0.3,
        },
        annotated_onsets=False,
        channels=("Fp1", "Fp2", "F7", "F8", "T3", "T4", "O1", "O2"),
        background_rms_uv=27.0,
        with_artifacts=True,
    )
