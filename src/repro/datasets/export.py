"""Corpus export / ingest through the EDF-style container.

Writes a synthetic corpus to a directory of ``.sedf`` files (one per
record) and ingests such a directory back into the MDB build pipeline —
the exact path a user with *real* EDF recordings would take to build
their own mega-database.

Note the container stores onset annotations but not the fine-grained
anomalous spans; span-based labelling therefore degrades to
label-start labelling after a round trip (the paper's clinical corpora
have the same limitation).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.datasets.base import SyntheticCorpus
from repro.datasets.edf import read_edf, write_edf
from repro.errors import DatasetError
from repro.mdb.builder import BuildReport, MDBBuilder
from repro.signals.types import Signal


def export_corpus(corpus: SyntheticCorpus, directory: str | Path) -> list[Path]:
    """Write every record of a corpus to ``directory`` as EDF files."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for index, record in enumerate(corpus.records()):
        path = root / f"{corpus.spec.name}-rec{index:04d}.sedf"
        write_edf(path, [record])
        paths.append(path)
    if not paths:
        raise DatasetError(f"corpus {corpus.spec.name!r} has no records to export")
    return paths


def iter_edf_directory(directory: str | Path) -> Iterator[Signal]:
    """Yield every channel of every ``.sedf`` file under ``directory``."""
    root = Path(directory)
    if not root.is_dir():
        raise DatasetError(f"no such corpus directory: {root}")
    paths = sorted(root.glob("*.sedf"))
    if not paths:
        raise DatasetError(f"no .sedf files found under {root}")
    for path in paths:
        yield from read_edf(path, source=path.stem)


def ingest_edf_directory(
    builder: MDBBuilder, directory: str | Path
) -> BuildReport:
    """Run every EDF record under ``directory`` through the MDB pipeline."""
    report = BuildReport()
    for record in iter_edf_directory(directory):
        builder.ingest_record(record, report)
    return report
