"""PhysioNet CHB-MIT-style corpus (paper ref [21]).

The real CHB-MIT Scalp EEG Database holds long 256 Hz paediatric
recordings with expert-annotated seizure onsets — the best-annotated of
the paper's five sources and the backbone of its seizure-prediction
evaluation (Fig. 10).  The stand-in mirrors: native 256 Hz (no
resampling needed), long records, mid-record annotated onsets, roughly
half the records containing a seizure.
"""

from __future__ import annotations

from repro.datasets.base import CorpusSpec
from repro.signals.types import AnomalyType


def physionet_like_spec(n_records: int = 24, record_duration_s: float = 60.0) -> CorpusSpec:
    """Spec for the CHB-MIT-style corpus."""
    return CorpusSpec(
        name="physionet-chb",
        sample_rate_hz=256.0,
        n_records=n_records,
        record_duration_s=record_duration_s,
        anomaly_mix={AnomalyType.SEIZURE: 0.5},
        annotated_onsets=True,
        onset_range_s=(0.5, 0.85),
        channels=("Fp1", "Fp2", "F3", "F4", "C3", "C4"),
        background_rms_uv=30.0,
        with_artifacts=True,
    )
