"""The embedded document store: named collections with Mongo-style API.

Usage mirrors pymongo closely enough that the MDB layer reads like the
paper's description::

    store = DocumentStore("emap")
    slices = store.collection("signal_sets")
    slices.create_index("label")
    doc_id = slices.insert_one({"label": "seizure", "samples": [...]})
    for doc in slices.find({"label": "seizure"}):
        ...
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.errors import DuplicateKeyError, StorageError
from repro.storage.documents import ID_FIELD, ObjectId, validate_document
from repro.storage.index import FieldIndex
from repro.storage.matching import matches_filter


def _single_equality_field(query: Mapping[str, Any]) -> tuple[str, Any] | None:
    """If ``query`` contains a plain-equality clause, return (field, value).

    Used to route queries through a field index; any remaining clauses
    are verified per candidate document.
    """
    for field, condition in query.items():
        if field.startswith("$"):
            continue
        if isinstance(condition, Mapping):
            continue
        return field, condition
    return None


class Collection:
    """A named set of documents with insert/find/count/delete."""

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise StorageError(f"collection name must be a non-empty string, got {name!r}")
        self.name = name
        self._documents: dict[ObjectId, dict[str, Any]] = {}
        self._indexes: dict[str, FieldIndex] = {}
        self._data_version = 0

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped by every mutating operation.

        Readers that materialise the collection (the cloud search
        plane, caches) compare this to decide whether their snapshot
        is stale; equal versions guarantee identical contents.
        """
        return self._data_version

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(list(self._documents.values()))

    # -- indexing ----------------------------------------------------

    def create_index(self, field: str) -> None:
        """Create (or rebuild) an equality index on a dotted field."""
        index = FieldIndex(field)
        for doc_id, document in self._documents.items():
            index.add(doc_id, document)
        self._indexes[field] = index

    @property
    def indexed_fields(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # -- writes ------------------------------------------------------

    def insert_one(self, document: Mapping[str, Any]) -> ObjectId:
        """Insert a document, assigning an id unless one is provided."""
        stored = validate_document(document)
        raw_id = stored.get(ID_FIELD)
        if raw_id is None:
            doc_id = ObjectId(namespace=self.name)
        elif isinstance(raw_id, ObjectId):
            doc_id = raw_id
        elif isinstance(raw_id, str):
            doc_id = ObjectId(raw_id)
        else:
            raise StorageError(f"{ID_FIELD} must be a string or ObjectId, got {raw_id!r}")
        if doc_id in self._documents:
            raise DuplicateKeyError(f"duplicate {ID_FIELD}: {doc_id}")
        stored[ID_FIELD] = doc_id
        self._documents[doc_id] = stored
        for index in self._indexes.values():
            index.add(doc_id, stored)
        self._data_version += 1
        return doc_id

    def insert_many(self, documents: list[Mapping[str, Any]]) -> list[ObjectId]:
        """Insert several documents, returning their ids in order."""
        return [self.insert_one(document) for document in documents]

    def delete_many(self, query: Mapping[str, Any]) -> int:
        """Delete all documents matching ``query``; returns the count."""
        doomed = [doc[ID_FIELD] for doc in self.find(query)]
        for doc_id in doomed:
            del self._documents[doc_id]
            for index in self._indexes.values():
                index.remove(doc_id)
        if doomed:
            self._data_version += 1
        return len(doomed)

    def update_many(
        self,
        query: Mapping[str, Any],
        update: Mapping[str, Any],
    ) -> int:
        """Apply a ``$set`` / ``$unset`` / ``$inc`` update to all matches.

        Returns the number of documents updated.  The ``_id`` field is
        immutable.  Indexes covering touched fields are maintained.
        """
        operations = dict(update)
        unknown = set(operations) - {"$set", "$unset", "$inc"}
        if unknown:
            raise StorageError(f"unsupported update operators: {sorted(unknown)}")
        if not operations:
            raise StorageError("update document must not be empty")
        touched = 0
        for document in self.find(query):
            doc_id = document[ID_FIELD]
            for field, value in operations.get("$set", {}).items():
                if field == ID_FIELD:
                    raise StorageError(f"{ID_FIELD} is immutable")
                document[field] = value
            for field in operations.get("$unset", {}):
                if field == ID_FIELD:
                    raise StorageError(f"{ID_FIELD} is immutable")
                document.pop(field, None)
            for field, amount in operations.get("$inc", {}).items():
                if field == ID_FIELD:
                    raise StorageError(f"{ID_FIELD} is immutable")
                current = document.get(field, 0)
                if not isinstance(current, (int, float)) or not isinstance(
                    amount, (int, float)
                ):
                    raise StorageError(f"$inc needs numeric values for {field!r}")
                document[field] = current + amount
            for index in self._indexes.values():
                index.remove(doc_id)
                index.add(doc_id, document)
            touched += 1
        if touched:
            self._data_version += 1
        return touched

    def clear(self) -> None:
        """Remove every document (indexes stay defined but empty)."""
        if self._documents:
            self._data_version += 1
        self._documents.clear()
        for index in self._indexes.values():
            index.clear()

    # -- reads -------------------------------------------------------

    def find_by_id(self, doc_id: ObjectId | str) -> dict[str, Any] | None:
        """Fetch one document by id, or ``None``."""
        key = doc_id if isinstance(doc_id, ObjectId) else ObjectId(doc_id)
        return self._documents.get(key)

    def find(
        self,
        query: Mapping[str, Any] | None = None,
        limit: int | None = None,
        sort_key: Callable[[Mapping[str, Any]], Any] | None = None,
        reverse: bool = False,
    ) -> list[dict[str, Any]]:
        """All documents matching ``query`` (insertion order by default)."""
        matches = list(self._iter_matches(query or {}))
        if sort_key is not None:
            matches.sort(key=sort_key, reverse=reverse)
        if limit is not None:
            if limit < 0:
                raise StorageError(f"limit must be non-negative, got {limit}")
            matches = matches[:limit]
        return matches

    def find_one(self, query: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        """The first matching document, or ``None``."""
        for document in self._iter_matches(query or {}):
            return document
        return None

    def count(self, query: Mapping[str, Any] | None = None) -> int:
        """Number of documents matching ``query``."""
        if not query:
            return len(self._documents)
        return sum(1 for _ in self._iter_matches(query))

    def distinct(self, field: str) -> list[Any]:
        """Distinct values of ``field`` across the collection."""
        index = self._indexes.get(field)
        if index is not None:
            return index.distinct_values()
        seen: list[Any] = []
        for document in self._documents.values():
            found, value = _get(document, field)
            if found and value not in seen:
                seen.append(value)
        return seen

    def _iter_matches(self, query: Mapping[str, Any]) -> Iterator[dict[str, Any]]:
        """Yield matching documents, using an index when one applies."""
        candidates: Iterator[dict[str, Any]]
        routed = _single_equality_field(query)
        if routed is not None and routed[0] in self._indexes:
            field, value = routed
            ids = self._indexes[field].lookup(value)
            candidates = (
                self._documents[doc_id]
                for doc_id in self._documents
                if doc_id in ids
            )
        else:
            candidates = iter(list(self._documents.values()))
        for document in candidates:
            if matches_filter(document, query):
                yield document


def _get(document: Mapping[str, Any], field: str) -> tuple[bool, Any]:
    from repro.storage.documents import get_path

    return get_path(document, field)


class DocumentStore:
    """A named group of collections (the Mongo "database")."""

    def __init__(self, name: str = "emap") -> None:
        if not name or not isinstance(name, str):
            raise StorageError(f"store name must be a non-empty string, got {name!r}")
        self.name = name
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get (creating on first use) the named collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def drop_collection(self, name: str) -> bool:
        """Delete a collection entirely; returns whether it existed."""
        return self._collections.pop(name, None) is not None

    @property
    def collection_names(self) -> tuple[str, ...]:
        return tuple(self._collections)

    def __contains__(self, name: str) -> bool:
        return name in self._collections
