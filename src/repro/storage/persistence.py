"""JSON-lines persistence for the embedded document store.

Each collection is written as one ``.jsonl`` file (one document per
line) plus a small ``manifest.json`` describing the store: collection
names and their indexed fields.  Numpy arrays are converted to lists on
save and restored as ``float64`` arrays on load for any field listed in
the manifest's per-collection ``array_fields``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import StorageError
from repro.storage.documents import ID_FIELD, ObjectId
from repro.storage.store import Collection, DocumentStore

_MANIFEST_NAME = "manifest.json"


def _encode_value(value: Any) -> Any:
    if isinstance(value, ObjectId):
        return {"$oid": value.value}
    if isinstance(value, np.ndarray):
        return {"$array": value.tolist()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$oid"}:
            return ObjectId(value["$oid"])
        if set(value) == {"$array"}:
            return np.asarray(value["$array"], dtype=np.float64)
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def save_store(store: DocumentStore, directory: str | Path) -> Path:
    """Write a store to ``directory`` (created if needed); returns the path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {"name": store.name, "collections": {}}
    for name in store.collection_names:
        collection = store.collection(name)
        manifest["collections"][name] = {
            "indexes": list(collection.indexed_fields),
            "count": len(collection),
        }
        path = root / f"{name}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for document in collection:
                handle.write(json.dumps(_encode_value(document)) + "\n")
    with (root / _MANIFEST_NAME).open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return root


def load_store(directory: str | Path) -> DocumentStore:
    """Load a store previously written by :func:`save_store`."""
    root = Path(directory)
    manifest_path = root / _MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no store manifest found at {manifest_path}")
    with manifest_path.open(encoding="utf-8") as handle:
        manifest = json.load(handle)
    store = DocumentStore(manifest.get("name", "emap"))
    for name, info in manifest.get("collections", {}).items():
        collection = store.collection(name)
        path = root / f"{name}.jsonl"
        if not path.exists():
            raise StorageError(f"manifest lists collection {name!r} but {path} is missing")
        _load_collection(collection, path)
        for field in info.get("indexes", []):
            collection.create_index(field)
        expected = info.get("count")
        if expected is not None and expected != len(collection):
            raise StorageError(
                f"collection {name!r}: manifest says {expected} documents, "
                f"file holds {len(collection)}"
            )
    return store


def _load_collection(collection: Collection, path: Path) -> None:
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as error:
                raise StorageError(
                    f"{path}:{line_number}: invalid JSON document: {error}"
                ) from error
            document = _decode_value(raw)
            if not isinstance(document, dict):
                raise StorageError(
                    f"{path}:{line_number}: expected an object, got "
                    f"{type(document).__name__}"
                )
            document.setdefault(ID_FIELD, None)
            if document[ID_FIELD] is None:
                del document[ID_FIELD]
            collection.insert_one(document)
