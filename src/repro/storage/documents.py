"""Document identity and validation for the embedded store."""

from __future__ import annotations

import itertools
import threading
from typing import Any, Mapping

from repro.errors import StorageError

#: Field under which every stored document carries its id.
ID_FIELD = "_id"

_counter = itertools.count(1)
_counter_lock = threading.Lock()


class ObjectId:
    """A unique, orderable, hashable document id.

    Ids combine a process-wide monotonic counter with an optional
    namespace, giving deterministic, human-readable ids such as
    ``mdb:42`` — sufficient for an in-process store (no distributed
    clock bits needed, unlike BSON ObjectIds).
    """

    __slots__ = ("_value",)

    def __init__(self, value: str | None = None, namespace: str = "doc") -> None:
        if value is not None:
            if not isinstance(value, str) or not value:
                raise StorageError(f"ObjectId value must be a non-empty string, got {value!r}")
            self._value = value
        else:
            with _counter_lock:
                serial = next(_counter)
            self._value = f"{namespace}:{serial}"

    @property
    def value(self) -> str:
        return self._value

    def __str__(self) -> str:
        return self._value

    def __repr__(self) -> str:
        return f"ObjectId({self._value!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectId):
            return self._value == other._value
        if isinstance(other, str):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "ObjectId") -> bool:
        if not isinstance(other, ObjectId):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)


def validate_document(document: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and shallow-copy a document before insertion.

    Documents must be string-keyed mappings.  Values are stored as-is
    (the MDB layer stores numpy arrays as lists for persistence).
    """
    if not isinstance(document, Mapping):
        raise StorageError(
            f"document must be a mapping, got {type(document).__name__}"
        )
    for key in document:
        if not isinstance(key, str):
            raise StorageError(f"document keys must be strings, got {key!r}")
        if key.startswith("$"):
            raise StorageError(f"document keys must not start with '$': {key!r}")
    return dict(document)


def get_path(document: Mapping[str, Any], path: str) -> tuple[bool, Any]:
    """Resolve a dotted field path; returns (found, value)."""
    current: Any = document
    for part in path.split("."):
        if isinstance(current, Mapping) and part in current:
            current = current[part]
        else:
            return False, None
    return True, current
