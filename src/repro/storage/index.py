"""Equality indexes for the embedded document store.

A :class:`FieldIndex` maps each distinct value of one (dotted) field to
the set of document ids holding it, accelerating the exact-equality
queries the MDB layer issues constantly (``{"label": "seizure"}``,
``{"dataset": ...}``).  Range queries fall back to collection scans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Mapping

from repro.errors import StorageError
from repro.storage.documents import ObjectId, get_path

#: Sentinel for documents that lack the indexed field.
_MISSING = object()


def _index_key(value: Any) -> Hashable:
    """Reduce a field value to a hashable index key (or raise)."""
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    if isinstance(value, ObjectId):
        return value.value
    raise StorageError(
        f"cannot index unhashable value of type {type(value).__name__}"
    )


class FieldIndex:
    """Equality index over one dotted field path."""

    def __init__(self, field: str) -> None:
        if not field or not isinstance(field, str):
            raise StorageError(f"index field must be a non-empty string, got {field!r}")
        self.field = field
        self._by_value: dict[Hashable, set[ObjectId]] = defaultdict(set)
        self._by_id: dict[ObjectId, Hashable] = {}

    def __len__(self) -> int:
        return len(self._by_id)

    def add(self, doc_id: ObjectId, document: Mapping[str, Any]) -> None:
        """Index one document (no-op key for missing fields)."""
        found, value = get_path(document, self.field)
        key = _index_key(value) if found else _MISSING
        self._by_value[key].add(doc_id)
        self._by_id[doc_id] = key

    def remove(self, doc_id: ObjectId) -> None:
        """Drop one document from the index, if present."""
        key = self._by_id.pop(doc_id, None)
        if key is None and doc_id not in self._by_value.get(None, ()):
            return
        bucket = self._by_value.get(key)
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del self._by_value[key]

    def lookup(self, value: Any) -> set[ObjectId]:
        """Ids of documents whose field equals ``value`` (copy)."""
        return set(self._by_value.get(_index_key(value), ()))

    def distinct_values(self) -> list[Hashable]:
        """All distinct indexed values (excluding the missing sentinel)."""
        return [key for key in self._by_value if key is not _MISSING]

    def clear(self) -> None:
        self._by_value.clear()
        self._by_id.clear()
