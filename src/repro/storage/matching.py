"""Mongo-style filter matching for the embedded document store.

Supports the operator subset the MDB layer (and tests) need:

* comparison: ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``
* membership: ``$in``, ``$nin``
* existence: ``$exists``
* logical: ``$and``, ``$or``, ``$not``
* implicit equality: ``{"field": value}``
* dotted paths: ``{"meta.label": "seizure"}``

Comparison against a missing field never matches (except ``$exists`` /
``$ne`` / ``$nin`` semantics, which follow MongoDB: ``$ne`` and
``$nin`` match missing fields).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import QueryError
from repro.storage.documents import get_path


def _compare(op: Callable[[Any, Any], bool], actual: Any, expected: Any) -> bool:
    """Apply a comparison, treating cross-type comparisons as no-match."""
    try:
        return bool(op(actual, expected))
    except TypeError:
        return False


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda a, b: a == b,
    "$gt": lambda a, b: a > b,
    "$gte": lambda a, b: a >= b,
    "$lt": lambda a, b: a < b,
    "$lte": lambda a, b: a <= b,
}


def _match_condition(found: bool, actual: Any, condition: Any) -> bool:
    """Match one field's value against a condition (operator dict or literal)."""
    if isinstance(condition, Mapping) and any(
        isinstance(key, str) and key.startswith("$") for key in condition
    ):
        for op, operand in condition.items():
            if op in _COMPARISONS:
                if not found or not _compare(_COMPARISONS[op], actual, operand):
                    return False
            elif op == "$ne":
                if found and actual == operand:
                    return False
            elif op == "$in":
                if not isinstance(operand, Sequence) or isinstance(operand, str):
                    raise QueryError(f"$in requires a sequence, got {operand!r}")
                if not found or actual not in operand:
                    return False
            elif op == "$nin":
                if not isinstance(operand, Sequence) or isinstance(operand, str):
                    raise QueryError(f"$nin requires a sequence, got {operand!r}")
                if found and actual in operand:
                    return False
            elif op == "$exists":
                if not isinstance(operand, bool):
                    raise QueryError(f"$exists requires a bool, got {operand!r}")
                if found is not operand:
                    return False
            elif op == "$not":
                if _match_condition(found, actual, operand):
                    return False
            else:
                raise QueryError(f"unsupported query operator: {op}")
        return True
    # Literal equality.
    return found and actual == condition


def matches_filter(document: Mapping[str, Any], query: Mapping[str, Any]) -> bool:
    """Whether ``document`` satisfies the Mongo-style ``query``.

    An empty query matches every document.
    """
    if not isinstance(query, Mapping):
        raise QueryError(f"query must be a mapping, got {type(query).__name__}")
    for key, condition in query.items():
        if key == "$and":
            if not isinstance(condition, Sequence) or isinstance(condition, str):
                raise QueryError("$and requires a list of sub-queries")
            if not all(matches_filter(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not isinstance(condition, Sequence) or isinstance(condition, str):
                raise QueryError("$or requires a list of sub-queries")
            if not any(matches_filter(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unsupported top-level operator: {key}")
        else:
            found, actual = get_path(document, key)
            if not _match_condition(found, actual, condition):
                return False
    return True
