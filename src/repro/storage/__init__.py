"""Embedded document store substrate (MongoDB/pymongo stand-in).

The paper stores the mega-database in MongoDB via pymongo.  This
subpackage provides the same interaction surface as an in-process
library: named collections of JSON-like documents with auto-assigned
ids, Mongo-style query filters, optional field indexes, and JSON-lines
persistence.

Public API:

* :class:`~repro.storage.store.DocumentStore` — a named set of
  collections.
* :class:`~repro.storage.store.Collection` — insert / find / count /
  delete with Mongo-style filters.
* :class:`~repro.storage.documents.ObjectId` — deterministic unique ids.
* :func:`~repro.storage.matching.matches_filter` — the filter engine.
"""

from repro.storage.documents import ObjectId
from repro.storage.matching import matches_filter
from repro.storage.store import Collection, DocumentStore

__all__ = ["Collection", "DocumentStore", "ObjectId", "matches_filter"]
