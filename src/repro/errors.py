"""Exception hierarchy for the EMAP reproduction package.

Every error raised by this package derives from :class:`EMAPError`, so
callers can catch one type to handle any library failure.  Subclasses
are grouped by subsystem (signals, storage, MDB, search, tracking,
network, framework) to keep error handling precise where it matters.
"""

from __future__ import annotations


class EMAPError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(EMAPError):
    """A configuration value is missing, malformed, or inconsistent."""


class SignalError(EMAPError):
    """A signal container or signal-processing operation failed."""


class FilterError(SignalError):
    """A filter design or streaming-filter operation failed."""


class ResampleError(SignalError):
    """Resampling a signal to the base frequency failed."""


class DatasetError(EMAPError):
    """A dataset generator or dataset registry operation failed."""


class EDFError(DatasetError):
    """Reading or writing the EDF-style binary container failed."""


class StorageError(EMAPError):
    """The embedded document store rejected an operation."""


class QueryError(StorageError):
    """A document-store filter expression is malformed."""


class DuplicateKeyError(StorageError):
    """An insert would violate a unique-id constraint."""


class MDBError(EMAPError):
    """Building or querying the mega-database failed."""


class SearchError(EMAPError):
    """The cloud cross-correlation search failed."""


class CloudUnavailableError(SearchError):
    """The cloud endpoint could not be reached (outage, open breaker)."""


class PayloadError(SearchError):
    """A search-result payload arrived dropped, truncated, or corrupted."""


class FaultPlanError(EMAPError):
    """A fault-injection plan is malformed or internally inconsistent."""


class TrackingError(EMAPError):
    """The edge signal-tracking stage failed."""


class KernelError(TrackingError):
    """The compiled edge kernel could not honour a forced selection."""


class NetworkError(EMAPError):
    """A network-model computation failed (unknown platform, bad payload)."""


class FrameworkError(EMAPError):
    """The closed-loop EMAP framework hit an unrecoverable state."""


class ObservabilityError(EMAPError):
    """A metrics, tracing, or profiling operation was misused."""


class SanitizerError(ObservabilityError):
    """A sanitized run violated a concurrency or resource budget."""


class GatewayError(EMAPError):
    """The serving gateway was misconfigured or misused."""
