"""Typed containers and constants for EEG signals.

The paper fixes three magic numbers that recur through the whole
framework; they are defined once here:

* 256 Hz base sampling rate (Section V-A),
* 256-sample input frames (one second of signal, Eq. 2),
* 1000-sample signal-sets stored in the mega-database (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterator

import numpy as np

from repro.errors import SignalError

#: Base sampling rate every MDB signal is resampled to (Section V-A).
BASE_SAMPLE_RATE_HZ = 256.0

#: Samples per one-second input frame transmitted to the cloud (Eq. 2).
FRAME_SAMPLES = 256

#: Samples per signal-set stored in the mega-database (Section V-B).
SLICE_SAMPLES = 1000


class AnomalyType(Enum):
    """Taxonomy of neurological anomalies evaluated in the paper.

    ``NONE`` marks normal background EEG.  The three anomalies match the
    paper's evaluation: seizures (anomaly 1), encephalopathy (anomaly 2)
    and stroke (anomaly 3).
    """

    NONE = "none"
    SEIZURE = "seizure"
    ENCEPHALOPATHY = "encephalopathy"
    STROKE = "stroke"

    @property
    def is_anomalous(self) -> bool:
        """Whether this label counts as anomalous (``A(S) = 1``)."""
        return self is not AnomalyType.NONE

    @classmethod
    def from_name(cls, name: str) -> "AnomalyType":
        """Parse an anomaly type from its string name (case-insensitive)."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            valid = ", ".join(member.value for member in cls)
            raise SignalError(
                f"unknown anomaly type {name!r}; expected one of: {valid}"
            ) from None


#: The three anomalies evaluated in Table I, in paper order.
ANOMALY_TYPES = (
    AnomalyType.SEIZURE,
    AnomalyType.ENCEPHALOPATHY,
    AnomalyType.STROKE,
)


def _as_signal_array(data: np.ndarray | list[float]) -> np.ndarray:
    """Coerce raw input into a validated 1-D float64 sample array."""
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 1:
        raise SignalError(f"signal data must be 1-D, got shape {array.shape}")
    if array.size == 0:
        raise SignalError("signal data must not be empty")
    if not np.all(np.isfinite(array)):
        raise SignalError("signal data contains NaN or infinite samples")
    return array


@dataclass(frozen=True)
class Signal:
    """A single-channel EEG recording in microvolts.

    Parameters
    ----------
    data:
        1-D array of samples in µV.
    sample_rate_hz:
        Sampling rate of ``data``.
    label:
        Anomaly label of the whole recording.
    channel:
        EEG channel name in 10-20 nomenclature (e.g. ``"Fp1"``).
    source:
        Free-form provenance string (dataset and record id).
    onset_sample:
        For anomalous recordings, the sample index of the *clinical*
        onset; ``None`` when unknown or not applicable.  Used by the
        prediction-horizon experiments (Fig. 10).
    label_start_sample:
        Where the anomaly *annotation* begins — the "preset" of the
        anomaly progression in the paper's well-annotated seizure data.
        Precedes the clinical onset for seizures (the preictal build-up
        is annotated anomalous); defaults to the onset when ``None``.
    anomalous_spans:
        Sample intervals ``(start, stop)`` that actually contain
        anomalous morphology (preictal discharge bursts + the ictal
        span).  When present, slicing labels slices by overlap with
        these spans rather than by the coarse label start.
    """

    data: np.ndarray
    sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
    label: AnomalyType = AnomalyType.NONE
    channel: str = "Fp1"
    source: str = "synthetic"
    onset_sample: int | None = None
    label_start_sample: int | None = None
    anomalous_spans: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", _as_signal_array(self.data))
        if self.sample_rate_hz <= 0:
            raise SignalError(
                f"sample rate must be positive, got {self.sample_rate_hz}"
            )
        for name in ("onset_sample", "label_start_sample"):
            value = getattr(self, name)
            if value is not None and not (0 <= value <= len(self.data)):
                raise SignalError(
                    f"{name} {value} outside signal of length {len(self.data)}"
                )
        if (
            self.onset_sample is not None
            and self.label_start_sample is not None
            and self.label_start_sample > self.onset_sample
        ):
            raise SignalError(
                f"label start {self.label_start_sample} must not follow "
                f"the clinical onset {self.onset_sample}"
            )
        if self.anomalous_spans is not None:
            for start, stop in self.anomalous_spans:
                if not (0 <= start < stop <= len(self.data)):
                    raise SignalError(
                        f"anomalous span ({start}, {stop}) outside signal "
                        f"of length {len(self.data)}"
                    )

    def __len__(self) -> int:
        return len(self.data)

    @property
    def duration_s(self) -> float:
        """Recording duration in seconds."""
        return len(self.data) / self.sample_rate_hz

    @property
    def onset_time_s(self) -> float | None:
        """Anomaly onset in seconds from recording start, if annotated."""
        if self.onset_sample is None:
            return None
        return self.onset_sample / self.sample_rate_hz

    @property
    def effective_label_start(self) -> int | None:
        """Where anomalous labelling begins (label start, else onset)."""
        if self.label_start_sample is not None:
            return self.label_start_sample
        return self.onset_sample

    def with_data(self, data: np.ndarray, sample_rate_hz: float | None = None) -> "Signal":
        """Return a copy with new samples (and optionally a new rate).

        Onset annotations are rescaled when the rate changes so they
        stay at the same instant in time.
        """
        new_rate = self.sample_rate_hz if sample_rate_hz is None else sample_rate_hz

        def _rescale(sample: int | None) -> int | None:
            if sample is None or new_rate == self.sample_rate_hz:
                return sample
            return min(int(round(sample * new_rate / self.sample_rate_hz)), len(data))

        spans = self.anomalous_spans
        if spans is not None and new_rate != self.sample_rate_hz:
            rescaled = []
            for start, stop in spans:
                new_start = _rescale(start)
                new_stop = _rescale(stop)
                if new_stop > new_start:
                    rescaled.append((new_start, new_stop))
            spans = tuple(rescaled)
        return replace(
            self,
            data=data,
            sample_rate_hz=new_rate,
            onset_sample=_rescale(self.onset_sample),
            label_start_sample=_rescale(self.label_start_sample),
            anomalous_spans=spans,
        )

    def frames(self, frame_samples: int = FRAME_SAMPLES) -> Iterator[np.ndarray]:
        """Iterate complete, non-overlapping frames of the recording.

        A trailing partial frame is dropped, matching the acquisition
        stage which only ever uploads complete one-second frames.
        """
        if frame_samples <= 0:
            raise SignalError(f"frame size must be positive, got {frame_samples}")
        for start in range(0, len(self.data) - frame_samples + 1, frame_samples):
            yield self.data[start : start + frame_samples]

    def segment(self, start: int, stop: int) -> np.ndarray:
        """Return samples ``[start, stop)`` with bounds checking."""
        if not (0 <= start < stop <= len(self.data)):
            raise SignalError(
                f"segment [{start}, {stop}) outside signal of length "
                f"{len(self.data)}"
            )
        return self.data[start:stop]


@dataclass(frozen=True)
class SignalSlice:
    """A 1000-sample signal-set ``S`` as stored in the mega-database.

    Slices carry the anomaly attribute ``A(S)`` (paper Section V-B) plus
    provenance so search results can be traced back to their source
    recording.
    """

    data: np.ndarray
    label: AnomalyType
    source: str = "synthetic"
    start_sample: int = 0
    slice_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", _as_signal_array(self.data))
        if self.start_sample < 0:
            raise SignalError(
                f"start sample must be non-negative, got {self.start_sample}"
            )

    def __len__(self) -> int:
        return len(self.data)

    @property
    def attribute(self) -> int:
        """The paper's binary label ``A(S)``: 0 normal, 1 anomalous."""
        return int(self.label.is_anomalous)

    def window(self, offset: int, length: int) -> np.ndarray:
        """Return the window ``data[offset : offset + length]``."""
        if offset < 0 or offset + length > len(self.data):
            raise SignalError(
                f"window [{offset}, {offset + length}) outside slice of "
                f"length {len(self.data)}"
            )
        return self.data[offset : offset + length]


@dataclass(frozen=True)
class Frame:
    """One second of acquired input signal ``I_N`` (256 samples).

    ``index`` is the time-step ``N``; ``filtered`` marks whether the
    bandpass filter has already been applied (``B_N`` vs ``I_N``).
    """

    data: np.ndarray
    index: int = 0
    filtered: bool = False
    expected_samples: int = field(default=FRAME_SAMPLES, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", _as_signal_array(self.data))
        if len(self.data) != self.expected_samples:
            raise SignalError(
                f"frame must contain exactly {self.expected_samples} samples, "
                f"got {len(self.data)}"
            )
        if self.index < 0:
            raise SignalError(f"frame index must be non-negative, got {self.index}")

    def __len__(self) -> int:
        return len(self.data)
