"""Signal-quality assessment for acquired EEG frames.

Scalp EEG frames are routinely unusable — electrode pops, ocular sweeps,
muscle bursts, rail saturation.  Uploading such a frame wastes a cloud
search and can poison the tracked set, so a deployed acquisition stage
grades every frame before transmission.  This module implements the
standard per-frame checks:

* **flatline** — near-zero variance (detached electrode),
* **saturation** — samples pinned at the amplifier rails,
* **amplitude excursion** — peak-to-peak beyond physiological EEG,
* **high-frequency contamination** — EMG-band energy ratio,
* **low-frequency contamination** — ocular/movement-band energy ratio.

:class:`QualityAssessor.assess` returns a :class:`FrameQuality` with a
0–1 score and the individual flags; the acquisition policy can gate
uploads on ``is_usable``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError
from repro.signals.types import BASE_SAMPLE_RATE_HZ


@dataclass(frozen=True)
class QualityThresholds:
    """Limits defining an acceptable EEG frame (µV scale)."""

    flatline_rms_uv: float = 0.5
    saturation_uv: float = 3000.0
    saturation_fraction: float = 0.01
    max_peak_to_peak_uv: float = 600.0
    max_hf_ratio: float = 0.35
    max_lf_ratio: float = 0.4
    hf_band_hz: tuple[float, float] = (45.0, 100.0)
    #: Boxcar length for the time-domain low-frequency check: energy
    #: surviving a quarter-second moving average is drift/ocular sway.
    lf_smooth_s: float = 0.25

    def __post_init__(self) -> None:
        if self.flatline_rms_uv <= 0:
            raise SignalError("flatline RMS must be positive")
        if self.saturation_uv <= 0:
            raise SignalError("saturation level must be positive")
        if not (0.0 < self.saturation_fraction <= 1.0):
            raise SignalError("saturation fraction must be in (0, 1]")
        if self.max_peak_to_peak_uv <= 0:
            raise SignalError("peak-to-peak limit must be positive")
        for name in ("max_hf_ratio", "max_lf_ratio"):
            if not (0.0 < getattr(self, name) <= 1.0):
                raise SignalError(f"{name} must be in (0, 1]")
        if self.lf_smooth_s <= 0:
            raise SignalError("LF smoothing window must be positive")


@dataclass(frozen=True)
class FrameQuality:
    """Assessment of one frame."""

    score: float
    flatline: bool
    saturated: bool
    amplitude_excursion: bool
    hf_contaminated: bool
    lf_contaminated: bool

    @property
    def is_usable(self) -> bool:
        """Whether the frame should be uploaded / tracked."""
        return not (
            self.flatline
            or self.saturated
            or self.amplitude_excursion
            or self.hf_contaminated
        )


class QualityAssessor:
    """Grades raw (unfiltered) EEG frames."""

    def __init__(
        self,
        thresholds: QualityThresholds | None = None,
        sample_rate_hz: float = BASE_SAMPLE_RATE_HZ,
    ) -> None:
        if sample_rate_hz <= 0:
            raise SignalError(f"sample rate must be positive, got {sample_rate_hz}")
        self.thresholds = thresholds or QualityThresholds()
        self.sample_rate_hz = sample_rate_hz

    def _band_ratio(self, frame: np.ndarray, band: tuple[float, float]) -> float:
        nyquist = self.sample_rate_hz / 2.0
        low, high = band
        high = min(high, nyquist * 0.999)
        if low > high:
            return 0.0
        nperseg = min(frame.size, 128)
        freqs, psd = sp_signal.welch(frame, fs=self.sample_rate_hz, nperseg=nperseg)
        total = float(psd.sum())
        if total <= 0:
            return 0.0
        mask = (freqs >= low) & (freqs <= high)
        return float(psd[mask].sum()) / total

    def _lf_ratio(self, centered: np.ndarray) -> float:
        """Fraction of variance surviving a short moving average.

        A one-second frame cannot spectrally resolve sub-hertz drift,
        so the check is time-domain: drift/ocular sway survives the
        boxcar, in-band EEG rhythms average out.
        """
        width = max(2, int(round(self.thresholds.lf_smooth_s * self.sample_rate_hz)))
        if width >= centered.size:
            return 0.0
        kernel = np.ones(width) / width
        smoothed = np.convolve(centered, kernel, mode="same")
        total = float(np.mean(centered**2))
        if total <= 0:
            return 0.0
        return min(1.0, float(np.mean(smoothed**2)) / total)

    def assess(self, frame: np.ndarray) -> FrameQuality:
        """Grade one raw frame (any length ≥ 16 samples)."""
        data = np.asarray(frame, dtype=np.float64)
        if data.ndim != 1 or data.size < 16:
            raise SignalError(
                f"quality assessment needs a 1-D frame of >= 16 samples, "
                f"got shape {data.shape}"
            )
        limits = self.thresholds
        centered = data - data.mean()
        rms = float(np.sqrt(np.mean(centered**2)))

        flatline = rms < limits.flatline_rms_uv
        saturated = (
            float((np.abs(data) >= limits.saturation_uv).mean())
            >= limits.saturation_fraction
        )
        peak_to_peak = float(data.max() - data.min())
        excursion = peak_to_peak > limits.max_peak_to_peak_uv
        hf_ratio = self._band_ratio(centered, limits.hf_band_hz)
        lf_ratio = self._lf_ratio(centered)
        hf_contaminated = hf_ratio > limits.max_hf_ratio
        lf_contaminated = lf_ratio > limits.max_lf_ratio

        # Score: start at 1, subtract proportional penalties.
        score = 1.0
        if flatline or saturated:
            score = 0.0
        else:
            score -= 0.5 * min(1.0, peak_to_peak / limits.max_peak_to_peak_uv) ** 4
            score -= 0.3 * min(1.0, hf_ratio / limits.max_hf_ratio) ** 2
            score -= 0.2 * min(1.0, lf_ratio / limits.max_lf_ratio) ** 2
        return FrameQuality(
            score=max(0.0, min(1.0, score)),
            flatline=flatline,
            saturated=saturated,
            amplitude_excursion=excursion,
            hf_contaminated=hf_contaminated,
            lf_contaminated=lf_contaminated,
        )

    def usable_fraction(self, data: np.ndarray, frame_samples: int = 256) -> float:
        """Fraction of a recording's frames that pass the quality gate."""
        series = np.asarray(data, dtype=np.float64)
        if series.size < frame_samples:
            raise SignalError("recording shorter than one frame")
        verdicts = [
            self.assess(series[start : start + frame_samples]).is_usable
            for start in range(0, series.size - frame_samples + 1, frame_samples)
        ]
        return float(np.mean(verdicts))
