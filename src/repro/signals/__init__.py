"""Signal substrate: containers, synthesis, filtering, and similarity.

This subpackage implements everything EMAP assumes about EEG signals:

* :mod:`repro.signals.types` — typed containers (:class:`Signal`,
  :class:`SignalSlice`, :class:`Frame`) and the anomaly taxonomy.
* :mod:`repro.signals.generator` — synthetic EEG background synthesis.
* :mod:`repro.signals.anomalies` — seizure / encephalopathy / stroke
  morphology injectors.
* :mod:`repro.signals.artifacts` — blink / EMG / powerline artifacts.
* :mod:`repro.signals.filters` — the paper's 100-tap 11–40 Hz FIR
  bandpass (Eq. 1) as both a one-shot and a streaming filter.
* :mod:`repro.signals.resample` — up-/down-sampling to the 256 Hz base
  rate.
* :mod:`repro.signals.slicing` — slicing records into 1000-sample
  signal-sets.
* :mod:`repro.signals.metrics` — cross-correlation (Eq. 2) and
  area-between-curves (Eq. 3) similarity metrics.
* :mod:`repro.signals.windows` — prefix-sum windowed statistics used to
  normalise sliding windows in O(1).
"""

from repro.signals.anomalies import AnomalySpec, inject_anomaly
from repro.signals.filters import BandpassFilter, FilterSpec, StreamingFIRFilter
from repro.signals.generator import BackgroundSpec, EEGGenerator
from repro.signals.metrics import (
    area_between_curves,
    cross_correlation,
    normalized_cross_correlation,
)
from repro.signals.montage import TEN_TWENTY_ELECTRODES, MultiChannelRecording
from repro.signals.quality import FrameQuality, QualityAssessor, QualityThresholds
from repro.signals.resample import resample_to
from repro.signals.slicing import slice_signal
from repro.signals.types import (
    ANOMALY_TYPES,
    BASE_SAMPLE_RATE_HZ,
    FRAME_SAMPLES,
    SLICE_SAMPLES,
    AnomalyType,
    Frame,
    Signal,
    SignalSlice,
)

__all__ = [
    "ANOMALY_TYPES",
    "BASE_SAMPLE_RATE_HZ",
    "FRAME_SAMPLES",
    "SLICE_SAMPLES",
    "AnomalyType",
    "AnomalySpec",
    "BackgroundSpec",
    "BandpassFilter",
    "EEGGenerator",
    "FilterSpec",
    "Frame",
    "FrameQuality",
    "MultiChannelRecording",
    "QualityAssessor",
    "QualityThresholds",
    "Signal",
    "SignalSlice",
    "StreamingFIRFilter",
    "TEN_TWENTY_ELECTRODES",
    "area_between_curves",
    "cross_correlation",
    "inject_anomaly",
    "normalized_cross_correlation",
    "resample_to",
    "slice_signal",
]
