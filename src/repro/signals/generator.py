"""Synthetic EEG background synthesis.

Offline reproduction cannot ship the five clinical corpora the paper
combines, so this module provides their stand-in: a physiologically
shaped EEG synthesiser.  Background EEG is modelled as

* broadband **1/f (pink) noise** — the aperiodic component,
* **band-limited noise** in the classical delta/theta/alpha/beta bands,
* a narrowband quasi-sinusoidal **community rhythm** (~19–21 Hz beta /
  sensorimotor rhythm) with slow amplitude waxing and waning.

The community rhythm is the load-bearing piece for reproduction: it is
what makes *normal* one-second windows from different subjects correlate
strongly (ω ≳ 0.8) at the right alignment — the property EMAP's cloud
search relies on to always find matches for normal inputs.  Rhythm
frequency is jittered per record so within-class correlation is high but
not perfect, mirroring inter-subject variability.

All amplitudes are in µV; typical scalp EEG RMS is 10–50 µV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import signal as sp_signal

from repro.errors import SignalError
from repro.signals.types import BASE_SAMPLE_RATE_HZ, AnomalyType, Signal

#: RMS below this is numerically degenerate: dividing by it would only
#: amplify float residue (or overflow outright), never recover signal.
#: An exact ``== 0.0`` guard here once let denormal-RMS noise through
#: and normalised it to full amplitude (emaplint EM004).
_RMS_EPSILON = 1e-12

#: Classical EEG bands (Hz).  Gamma is excluded: the paper's 11–40 Hz
#: bandpass keeps at most its lowest edge, and scalp gamma is tiny.
EEG_BANDS: dict[str, tuple[float, float]] = {
    "delta": (0.5, 4.0),
    "theta": (4.0, 8.0),
    "alpha": (8.0, 13.0),
    "beta": (13.0, 30.0),
}


@dataclass(frozen=True)
class BackgroundSpec:
    """Parameters of the synthetic EEG background.

    ``rhythm_fraction`` is the fraction of total RMS carried by the
    narrowband community rhythm; raising it increases normal-to-normal
    window correlations (and therefore search match counts).
    """

    sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
    rms_uv: float = 30.0
    band_weights: dict[str, float] = field(
        default_factory=lambda: {
            "delta": 0.30,
            "theta": 0.20,
            "alpha": 0.25,
            "beta": 0.25,
        }
    )
    pink_fraction: float = 0.25
    pink_exponent: float = 1.0
    rhythm_hz: float = 20.0
    rhythm_jitter_hz: float = 0.12
    rhythm_fraction: float = 0.85
    rhythm_am_hz: float = 0.15
    rhythm_am_depth: float = 0.15

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise SignalError(
                f"sample rate must be positive, got {self.sample_rate_hz}"
            )
        if self.rms_uv <= 0:
            raise SignalError(f"RMS must be positive, got {self.rms_uv}")
        if not (0.0 <= self.pink_fraction <= 1.0):
            raise SignalError(
                f"pink fraction must be in [0, 1], got {self.pink_fraction}"
            )
        if not (0.0 <= self.rhythm_fraction < 1.0):
            raise SignalError(
                f"rhythm fraction must be in [0, 1), got {self.rhythm_fraction}"
            )
        if not (0.0 <= self.rhythm_am_depth < 1.0):
            raise SignalError(
                f"AM depth must be in [0, 1), got {self.rhythm_am_depth}"
            )
        unknown = set(self.band_weights) - set(EEG_BANDS)
        if unknown:
            raise SignalError(f"unknown EEG bands: {sorted(unknown)}")


def pink_noise(
    n_samples: int, rng: np.random.Generator, exponent: float = 1.0
) -> np.ndarray:
    """Unit-RMS 1/f^exponent noise via spectral shaping."""
    if n_samples <= 0:
        raise SignalError(f"sample count must be positive, got {n_samples}")
    if n_samples == 1:
        return np.zeros(1)
    white = rng.standard_normal(n_samples)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n_samples)
    # Leave DC untouched at zero weight; shape the rest as f^(-exp/2)
    # so the *power* spectrum goes as 1/f^exponent.
    shaping = np.zeros_like(freqs)
    shaping[1:] = freqs[1:] ** (-exponent / 2.0)
    shaped = np.fft.irfft(spectrum * shaping, n=n_samples)
    rms = float(np.sqrt(np.mean(shaped**2)))
    if rms < _RMS_EPSILON:
        return shaped
    return shaped / rms


def band_noise(
    n_samples: int,
    band: tuple[float, float],
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Unit-RMS Gaussian noise band-limited to ``band`` Hz."""
    if n_samples <= 0:
        raise SignalError(f"sample count must be positive, got {n_samples}")
    low, high = band
    nyquist = sample_rate_hz / 2.0
    if not (0 < low < high < nyquist):
        raise SignalError(
            f"band [{low}, {high}] Hz invalid for fs={sample_rate_hz} Hz"
        )
    white = rng.standard_normal(n_samples)
    sos = sp_signal.butter(4, [low, high], btype="bandpass", fs=sample_rate_hz, output="sos")
    shaped = sp_signal.sosfiltfilt(sos, white)
    rms = float(np.sqrt(np.mean(shaped**2)))
    if rms < _RMS_EPSILON:
        return shaped
    return shaped / rms


class EEGGenerator:
    """Deterministic synthetic EEG source.

    Every draw flows through one :class:`numpy.random.Generator`, so a
    generator constructed with the same seed produces identical
    recordings — the whole evaluation pipeline is reproducible from its
    seeds.
    """

    def __init__(
        self, spec: BackgroundSpec | None = None, seed: int | None = 0
    ) -> None:
        self.spec = spec or BackgroundSpec()
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying random generator (shared with anomaly injectors)."""
        return self._rng

    def background(self, duration_s: float) -> np.ndarray:
        """Synthesise ``duration_s`` seconds of background EEG in µV."""
        spec = self.spec
        n_samples = int(round(duration_s * spec.sample_rate_hz))
        if n_samples <= 0:
            raise SignalError(f"duration {duration_s} s yields no samples")

        noise = self._aperiodic_mixture(n_samples)
        rhythm = self._community_rhythm(n_samples)

        noise_rms = np.sqrt(1.0 - spec.rhythm_fraction**2) * spec.rms_uv
        rhythm_rms = spec.rhythm_fraction * spec.rms_uv
        return noise_rms * noise + rhythm_rms * rhythm

    def _aperiodic_mixture(self, n_samples: int) -> np.ndarray:
        """Unit-RMS mixture of pink noise and weighted band noise."""
        spec = self.spec
        components = []
        weights = []
        if spec.pink_fraction > 0:
            components.append(
                pink_noise(n_samples, self._rng, spec.pink_exponent)
            )
            weights.append(spec.pink_fraction)
        band_total = sum(spec.band_weights.values())
        if band_total > 0:
            scale = (1.0 - spec.pink_fraction) / band_total
            for name, weight in spec.band_weights.items():
                if weight <= 0:
                    continue
                components.append(
                    band_noise(
                        n_samples, EEG_BANDS[name], spec.sample_rate_hz, self._rng
                    )
                )
                weights.append(weight * scale)
        if not components:
            return np.zeros(n_samples)
        mixture = np.zeros(n_samples)
        for component, weight in zip(components, weights):
            mixture += weight * component
        rms = float(np.sqrt(np.mean(mixture**2)))
        if rms < _RMS_EPSILON:
            return mixture
        return mixture / rms

    def _community_rhythm(self, n_samples: int) -> np.ndarray:
        """Unit-RMS narrowband rhythm with slow amplitude modulation.

        Frequency is drawn once per call (per record), phase uniformly;
        the slow AM models waxing/waning without destroying short-window
        correlations between subjects.
        """
        spec = self.spec
        freq = spec.rhythm_hz + self._rng.normal(0.0, spec.rhythm_jitter_hz)
        phase = self._rng.uniform(0.0, 2.0 * np.pi)
        am_phase = self._rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n_samples) / spec.sample_rate_hz
        carrier = np.sin(2.0 * np.pi * freq * t + phase)
        envelope = 1.0 + spec.rhythm_am_depth * np.sin(
            2.0 * np.pi * spec.rhythm_am_hz * t + am_phase
        )
        rhythm = carrier * envelope
        rms = float(np.sqrt(np.mean(rhythm**2)))
        return rhythm / rms

    def record(
        self,
        duration_s: float,
        label: AnomalyType = AnomalyType.NONE,
        channel: str = "Fp1",
        source: str = "synthetic",
        onset_sample: int | None = None,
    ) -> Signal:
        """Wrap a fresh background draw in a :class:`Signal`.

        Anomalous morphology is *not* added here — use
        :func:`repro.signals.anomalies.inject_anomaly` on the result, or
        the dataset generators which compose both steps.
        """
        data = self.background(duration_s)
        return Signal(
            data=data,
            sample_rate_hz=self.spec.sample_rate_hz,
            label=label,
            channel=channel,
            source=source,
            onset_sample=onset_sample,
        )
