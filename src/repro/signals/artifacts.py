"""Common EEG artifact models.

Scalp EEG is contaminated by ocular, muscular, and mains interference;
the paper's bandpass filter exists precisely to attenuate these
(Section III).  The dataset generators sprinkle artifacts into raw
recordings so the filtering stage has real work to do, and the filter
tests assert quantitative suppression of each artifact class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError


@dataclass(frozen=True)
class ArtifactSpec:
    """Rates and amplitudes of the three artifact classes."""

    blink_rate_hz: float = 0.2
    blink_amplitude_uv: float = 120.0
    emg_burst_rate_hz: float = 0.05
    emg_amplitude_uv: float = 25.0
    powerline_hz: float = 50.0
    powerline_amplitude_uv: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "blink_rate_hz",
            "blink_amplitude_uv",
            "emg_burst_rate_hz",
            "emg_amplitude_uv",
            "powerline_hz",
            "powerline_amplitude_uv",
        ):
            if getattr(self, name) < 0:
                raise SignalError(f"{name} must be non-negative")


def blink_artifact(
    n_samples: int,
    sample_rate_hz: float,
    rng: np.random.Generator,
    rate_hz: float = 0.2,
    amplitude_uv: float = 120.0,
) -> np.ndarray:
    """Slow (~300 ms) high-amplitude ocular deflections at Poisson times.

    Blinks are dominated by < 5 Hz energy, so the 11–40 Hz bandpass
    should remove nearly all of it.
    """
    if n_samples <= 0:
        raise SignalError(f"sample count must be positive, got {n_samples}")
    out = np.zeros(n_samples)
    expected = rate_hz * n_samples / sample_rate_hz
    n_events = rng.poisson(expected) if expected > 0 else 0
    width = 0.08 * sample_rate_hz
    half_span = int(4 * width)
    for center in rng.uniform(0, n_samples, size=n_events):
        idx = np.arange(
            max(int(center) - half_span, 0), min(int(center) + half_span, n_samples)
        )
        out[idx] += amplitude_uv * np.exp(-0.5 * ((idx - center) / width) ** 2)
    return out


def emg_artifact(
    n_samples: int,
    sample_rate_hz: float,
    rng: np.random.Generator,
    burst_rate_hz: float = 0.05,
    amplitude_uv: float = 25.0,
) -> np.ndarray:
    """Broadband high-frequency muscle bursts (0.5–2 s long)."""
    if n_samples <= 0:
        raise SignalError(f"sample count must be positive, got {n_samples}")
    out = np.zeros(n_samples)
    expected = burst_rate_hz * n_samples / sample_rate_hz
    n_events = rng.poisson(expected) if expected > 0 else 0
    for start in rng.uniform(0, n_samples, size=n_events):
        length = int(rng.uniform(0.5, 2.0) * sample_rate_hz)
        begin = int(start)
        stop = min(begin + length, n_samples)
        if stop <= begin:
            continue
        burst = rng.standard_normal(stop - begin)
        window = np.hanning(stop - begin) if stop - begin > 2 else np.ones(stop - begin)
        out[begin:stop] += amplitude_uv * burst * window
    return out


def powerline_artifact(
    n_samples: int,
    sample_rate_hz: float,
    rng: np.random.Generator,
    mains_hz: float = 50.0,
    amplitude_uv: float = 5.0,
) -> np.ndarray:
    """Constant mains hum at 50 or 60 Hz with random phase."""
    if n_samples <= 0:
        raise SignalError(f"sample count must be positive, got {n_samples}")
    phase = rng.uniform(0.0, 2.0 * np.pi)
    t = np.arange(n_samples) / sample_rate_hz
    return amplitude_uv * np.sin(2.0 * np.pi * mains_hz * t + phase)


def add_artifacts(
    data: np.ndarray,
    sample_rate_hz: float,
    rng: np.random.Generator,
    spec: ArtifactSpec | None = None,
) -> np.ndarray:
    """Return a copy of ``data`` with all three artifact classes added."""
    artifacts = spec or ArtifactSpec()
    samples = np.asarray(data, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"data must be 1-D, got shape {samples.shape}")
    n = samples.size
    if n == 0:
        raise SignalError("data must not be empty")
    result = samples.copy()
    result += blink_artifact(
        n, sample_rate_hz, rng, artifacts.blink_rate_hz, artifacts.blink_amplitude_uv
    )
    result += emg_artifact(
        n, sample_rate_hz, rng, artifacts.emg_burst_rate_hz, artifacts.emg_amplitude_uv
    )
    if artifacts.powerline_hz < sample_rate_hz / 2:
        result += powerline_artifact(
            n, sample_rate_hz, rng, artifacts.powerline_hz, artifacts.powerline_amplitude_uv
        )
    return result
