"""Slicing recordings into 1000-sample signal-sets (paper Section V-B).

Each MDB entry is a contiguous 1000-sample slice of a filtered,
256 Hz recording, labelled normal or anomalous.  For recordings with an
annotated onset, slices are labelled anomalous when they overlap the
anomalous span; recordings without onsets inherit the whole-record
label, matching the paper's handling of the sparsely-annotated
encephalopathy and stroke data ("we have annotated the complete signal
as an anomaly").
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SignalError
from repro.signals.types import SLICE_SAMPLES, AnomalyType, Signal, SignalSlice


#: Fraction of a slice that must be anomalous for an anomalous label.
#: Deliberately permissive (10 %): clinical annotations mark whole
#: anomalous *episodes*, so slices dominated by inter-discharge
#: background still carry the anomalous label — the label noise behind
#: the paper's mixed correlation sets (Fig. 2, PA₀ ≈ 0.22) and its
#: ~15 % false-positive rate.
DEFAULT_MIN_ANOMALY_OVERLAP = 0.1


def slice_signal(
    sig: Signal,
    slice_samples: int = SLICE_SAMPLES,
    stride: int | None = None,
    min_anomaly_overlap: float = DEFAULT_MIN_ANOMALY_OVERLAP,
) -> Iterator[SignalSlice]:
    """Yield labelled signal-sets from a recording.

    Parameters
    ----------
    sig:
        The (already filtered, base-rate) recording.
    slice_samples:
        Samples per signal-set; the paper uses 1000.
    stride:
        Offset between consecutive slices; defaults to ``slice_samples``
        (non-overlapping), the paper's scheme.
    min_anomaly_overlap:
        For onset-annotated recordings, the fraction of a slice that
        must lie inside the annotated anomalous span (label start — or
        clinical onset when no label start is set — to record end) for
        the slice to be labelled anomalous.

    A trailing partial slice is dropped.
    """
    if slice_samples <= 0:
        raise SignalError(f"slice size must be positive, got {slice_samples}")
    step = slice_samples if stride is None else stride
    if step <= 0:
        raise SignalError(f"stride must be positive, got {step}")
    if not (0.0 < min_anomaly_overlap <= 1.0):
        raise SignalError(
            f"min anomaly overlap must be in (0, 1], got {min_anomaly_overlap}"
        )

    label_start = sig.effective_label_start
    spans = sig.anomalous_spans
    for number, start in enumerate(
        range(0, len(sig.data) - slice_samples + 1, step)
    ):
        stop = start + slice_samples
        label = sig.label
        if label.is_anomalous:
            if spans is not None:
                overlap = sum(
                    max(0, min(stop, span_stop) - max(start, span_start))
                    for span_start, span_stop in spans
                )
                if overlap < min_anomaly_overlap * slice_samples:
                    label = AnomalyType.NONE
            elif label_start is not None:
                overlap = max(0, stop - max(start, label_start))
                if overlap < min_anomaly_overlap * slice_samples:
                    label = AnomalyType.NONE
        yield SignalSlice(
            data=sig.data[start:stop].copy(),
            label=label,
            source=sig.source,
            start_sample=start,
            slice_id=f"{sig.source}/{sig.channel}/{number}",
        )


def count_slices(
    total_samples: int,
    slice_samples: int = SLICE_SAMPLES,
    stride: int | None = None,
) -> int:
    """Number of complete slices a recording of given length yields."""
    if slice_samples <= 0:
        raise SignalError(f"slice size must be positive, got {slice_samples}")
    step = slice_samples if stride is None else stride
    if step <= 0:
        raise SignalError(f"stride must be positive, got {step}")
    if total_samples < slice_samples:
        return 0
    return (total_samples - slice_samples) // step + 1
