"""Similarity metrics between EEG signal windows.

Implements the paper's two similarity measures:

* Eq. 2 — **cross-correlation** ``ω(A, B) = Σ A_n · B_n`` (sliding dot
  product), plus a normalised variant bounded in ``[-1, 1]``.  The
  cloud search threshold δ = 0.8 only makes sense for the normalised
  form (see DESIGN.md, "Paper ambiguities resolved").
* Eq. 3 — **area between curves** ``A(A, B) = Σ |A_i − B_i|``, the cheap
  edge-side similarity used by Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError

#: Floor used to avoid division by zero when normalising flat windows.
NORM_EPSILON = 1e-12


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate that two windows are 1-D, equal-length and non-empty."""
    first = np.asarray(a, dtype=np.float64)
    second = np.asarray(b, dtype=np.float64)
    if first.ndim != 1 or second.ndim != 1:
        raise SignalError(
            f"metric inputs must be 1-D, got shapes {first.shape} and {second.shape}"
        )
    if first.size != second.size:
        raise SignalError(
            f"metric inputs must have equal length, got {first.size} and {second.size}"
        )
    if first.size == 0:
        raise SignalError("metric inputs must not be empty")
    return first, second


def cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Raw sliding dot product of two equal-length windows (paper Eq. 2).

    This is the unnormalised form; its magnitude scales with signal
    amplitude, which is why the framework thresholds the normalised
    variant instead.
    """
    first, second = _check_pair(a, b)
    return float(np.dot(first, second))


def normalized_cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Zero-mean, unit-norm cross-correlation, bounded in ``[-1, 1]``.

    Equivalent to the Pearson correlation of the two windows.  A window
    with (numerically) zero variance has no shape to correlate, so any
    pairing involving one yields 0.
    """
    first, second = _check_pair(a, b)
    first = first - first.mean()
    second = second - second.mean()
    denom = float(np.linalg.norm(first) * np.linalg.norm(second))
    if denom < NORM_EPSILON:
        return 0.0
    value = float(np.dot(first, second) / denom)
    # Guard against floating-point drift just outside the valid range.
    return min(1.0, max(-1.0, value))


def area_between_curves(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of absolute sample differences (paper Eq. 3).

    Expressed in "square units": µV · sample.  The paper's edge-side
    area threshold δ_A ≈ 900 assumes raw µV-scale inputs.
    """
    first, second = _check_pair(a, b)
    return float(np.abs(first - second).sum())


def mean_absolute_deviation(a: np.ndarray, b: np.ndarray) -> float:
    """Area between curves normalised by window length (µV per sample)."""
    first, second = _check_pair(a, b)
    return float(np.abs(first - second).mean())


def sliding_normalized_correlation(
    window: np.ndarray, series: np.ndarray
) -> np.ndarray:
    """Normalised correlation of ``window`` against every offset of ``series``.

    Returns an array of length ``len(series) - len(window) + 1`` whose
    entry ``k`` is ``normalized_cross_correlation(window, series[k:k+m])``.
    Computed with FFT-free vectorised prefix sums, which is exact and
    fast enough for the MDB slice length (1000 samples).

    This is the reference implementation used by the exhaustive search
    baseline and by tests to validate the sliding-window search.
    """
    win = np.asarray(window, dtype=np.float64)
    data = np.asarray(series, dtype=np.float64)
    if win.ndim != 1 or data.ndim != 1:
        raise SignalError("sliding correlation inputs must be 1-D")
    m = win.size
    if m == 0:
        raise SignalError("window must not be empty")
    if data.size < m:
        raise SignalError(
            f"series of length {data.size} shorter than window of length {m}"
        )

    win_centered = win - win.mean()
    win_norm = float(np.linalg.norm(win_centered))

    n_offsets = data.size - m + 1
    if win_norm < NORM_EPSILON:
        return np.zeros(n_offsets)

    # Windowed sums and sums of squares via prefix sums: O(n) overall.
    prefix = np.concatenate(([0.0], np.cumsum(data)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(data * data)))
    window_sums = prefix[m:] - prefix[:-m]
    window_sq_sums = prefix_sq[m:] - prefix_sq[:-m]
    window_means = window_sums / m
    # Var * m = Σx² − m·mean²; clamp tiny negatives from cancellation.
    centered_norms_sq = np.maximum(window_sq_sums - m * window_means**2, 0.0)
    centered_norms = np.sqrt(centered_norms_sq)

    # Σ win_centered · data[k:k+m] via correlation; subtracting the mean
    # of each data window contributes nothing because Σ win_centered = 0.
    dots = np.correlate(data, win_centered, mode="valid")

    denom = win_norm * centered_norms
    flat = denom < NORM_EPSILON
    denom[flat] = 1.0
    values = dots / denom
    values[flat] = 0.0
    return np.clip(values, -1.0, 1.0)


@dataclass(frozen=True)
class SlidingWindowStats:
    """Frame-invariant per-offset statistics of a series' strided windows.

    Everything here depends only on the *series*, the window length and
    the stride — never on the query frame — so it can be computed once
    when a slice is adopted and reused for every subsequent comparison
    (the edge tracking plane's compile step,
    :mod:`repro.edge.plane`).  ``windows`` is a read-only strided view
    into the original series; entry ``k`` covers offset ``k · stride``.
    """

    windows: np.ndarray
    means: np.ndarray
    rms: np.ndarray
    flat: np.ndarray
    stride: int

    @property
    def n_offsets(self) -> int:
        return int(self.windows.shape[0])

    @property
    def window_samples(self) -> int:
        return int(self.windows.shape[1])


def sliding_window_stats(
    series: np.ndarray, window_samples: int, stride: int = 1
) -> SlidingWindowStats:
    """Precompute every strided window's mean/RMS statistics.

    This is the query-independent half of
    :func:`sliding_area_normalized`, split out so callers that compare
    many frames against an unchanged series (the edge tracker between
    cloud refreshes) pay for the prefix sums exactly once.  The
    formulas are identical to the inline versions, so consumers remain
    bit-identical to the one-shot path.
    """
    data = np.asarray(series, dtype=np.float64)
    if data.ndim != 1:
        raise SignalError(f"series must be 1-D, got shape {data.shape}")
    if stride < 1:
        raise SignalError(f"stride must be >= 1, got {stride}")
    m = window_samples
    if m <= 0:
        raise SignalError(f"window length must be positive, got {m}")
    if data.size < m:
        raise SignalError(
            f"series of length {data.size} shorter than window of length {m}"
        )
    n_offsets = (data.size - m) // stride + 1
    shape = (n_offsets, m)
    strides = (data.strides[0] * stride, data.strides[0])
    windows = np.lib.stride_tricks.as_strided(data, shape=shape, strides=strides)

    prefix = np.concatenate(([0.0], np.cumsum(data)))
    prefix_sq = np.concatenate(([0.0], np.cumsum(data * data)))
    starts = np.arange(n_offsets) * stride
    sums = prefix[starts + m] - prefix[starts]
    sq_sums = prefix_sq[starts + m] - prefix_sq[starts]
    means = sums / m
    variances = np.maximum(sq_sums / m - means**2, 0.0)
    rms = np.sqrt(variances)
    flat = rms < NORM_EPSILON
    return SlidingWindowStats(
        windows=windows, means=means, rms=rms, flat=flat, stride=stride
    )


def normalized_sliding_windows(
    stats: SlidingWindowStats, reference_rms: float
) -> np.ndarray:
    """Materialise every window rescaled to zero mean and ``reference_rms``.

    Flat (zero-variance) windows are centred and scaled by
    ``reference_rms`` itself, exactly as the one-shot path computes
    them before overriding their area with the worst case; consumers
    must still apply that override using ``stats.flat``.
    """
    if reference_rms <= 0:
        raise SignalError(f"reference RMS must be positive, got {reference_rms}")
    safe_rms = np.where(stats.flat, 1.0, stats.rms)
    scale = reference_rms / safe_rms
    return (stats.windows - stats.means[:, None]) * scale[:, None]


def normalized_query(window: np.ndarray, reference_rms: float) -> np.ndarray:
    """The query half of :func:`sliding_area_normalized`'s rescaling.

    Centres the frame and rescales it to ``reference_rms`` (a frame
    with numerically zero variance is only centred, matching the
    inline path).
    """
    win = np.asarray(window, dtype=np.float64)
    if win.ndim != 1:
        raise SignalError(f"query window must be 1-D, got shape {win.shape}")
    if win.size == 0:
        raise SignalError("window must not be empty")
    if reference_rms <= 0:
        raise SignalError(f"reference RMS must be positive, got {reference_rms}")
    centered = win - win.mean()
    win_rms = float(np.sqrt(np.mean(centered**2)))
    return centered * (reference_rms / win_rms) if win_rms > NORM_EPSILON else centered


def sliding_area(
    window: np.ndarray, series: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Area between curves of ``window`` against offsets of ``series``.

    Evaluates offsets ``0, stride, 2·stride, …`` (O(n·m / stride));
    entry ``k`` corresponds to offset ``k · stride``.  Used by the edge
    tracker (Algorithm 2) and the Fig. 8 experiments.
    """
    win = np.asarray(window, dtype=np.float64)
    data = np.asarray(series, dtype=np.float64)
    if win.ndim != 1 or data.ndim != 1:
        raise SignalError("sliding area inputs must be 1-D")
    if stride < 1:
        raise SignalError(f"stride must be >= 1, got {stride}")
    m = win.size
    if m == 0:
        raise SignalError("window must not be empty")
    if data.size < m:
        raise SignalError(
            f"series of length {data.size} shorter than window of length {m}"
        )
    n_offsets = (data.size - m) // stride + 1
    # Build a strided view of the evaluated windows, reduce along axis 1.
    shape = (n_offsets, m)
    strides = (data.strides[0] * stride, data.strides[0])
    windows = np.lib.stride_tricks.as_strided(data, shape=shape, strides=strides)
    return np.abs(windows - win).sum(axis=1)


def sliding_area_normalized(
    window: np.ndarray,
    series: np.ndarray,
    reference_rms: float,
    stride: int = 1,
) -> np.ndarray:
    """Shape-comparing sliding area: windows normalised per offset.

    Both the query ``window`` and every evaluated window of ``series``
    are rescaled to zero mean and ``reference_rms`` before the Eq. 3
    area is taken, so the test compares *shape* like the cloud's
    normalised correlation does — the property behind the paper's
    δ_A ≈ 900 ↔ δ = 0.8 equivalence (Fig. 8a).  A slice window with
    (numerically) zero variance has no shape; its area is reported as
    the worst case Σ|query| so it never survives a sensible threshold.
    """
    win = np.asarray(window, dtype=np.float64)
    data = np.asarray(series, dtype=np.float64)
    if win.ndim != 1 or data.ndim != 1:
        raise SignalError("sliding area inputs must be 1-D")
    if stride < 1:
        raise SignalError(f"stride must be >= 1, got {stride}")
    if reference_rms <= 0:
        raise SignalError(f"reference RMS must be positive, got {reference_rms}")
    m = win.size
    if m == 0:
        raise SignalError("window must not be empty")
    if data.size < m:
        raise SignalError(
            f"series of length {data.size} shorter than window of length {m}"
        )

    query = normalized_query(win, reference_rms)
    stats = sliding_window_stats(data, m, stride)
    areas = np.abs(normalized_sliding_windows(stats, reference_rms) - query).sum(
        axis=1
    )
    areas[stats.flat] = float(np.abs(query).sum())
    return areas
