"""Resampling dataset recordings to the 256 Hz base rate.

The five source corpora sample anywhere from ~160 Hz to 512 Hz; the MDB
build pipeline up-/down-samples everything to
:data:`~repro.signals.types.BASE_SAMPLE_RATE_HZ` before filtering and
slicing (paper Section V-B).  Polyphase resampling
(``scipy.signal.resample_poly``) is used because it behaves well on
non-periodic biosignals, unlike FFT resampling which assumes
circularity.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ResampleError
from repro.signals.types import BASE_SAMPLE_RATE_HZ, Signal

#: Largest numerator/denominator allowed when approximating the rate
#: ratio as a rational number.  Caps polyphase filter cost for odd
#: rates such as the Bonn corpus's 173.61 Hz.
_MAX_RATIO_DENOMINATOR = 1000


def rate_ratio(from_hz: float, to_hz: float) -> tuple[int, int]:
    """Return (up, down) integers approximating ``to_hz / from_hz``.

    The approximation error is bounded by the rational-approximation
    limit and is negligible for every corpus rate used here (< 0.01 %).
    """
    if from_hz <= 0 or to_hz <= 0:
        raise ResampleError(
            f"sample rates must be positive, got {from_hz} -> {to_hz}"
        )
    ratio = Fraction(to_hz / from_hz).limit_denominator(_MAX_RATIO_DENOMINATOR)
    if ratio.numerator == 0:
        raise ResampleError(
            f"rate ratio {to_hz}/{from_hz} too extreme to approximate"
        )
    return ratio.numerator, ratio.denominator


def resample_array(
    data: np.ndarray, from_hz: float, to_hz: float
) -> np.ndarray:
    """Resample a 1-D array from ``from_hz`` to ``to_hz``."""
    samples = np.asarray(data, dtype=np.float64)
    if samples.ndim != 1:
        raise ResampleError(f"expected 1-D data, got shape {samples.shape}")
    if samples.size == 0:
        raise ResampleError("cannot resample an empty signal")
    up, down = rate_ratio(from_hz, to_hz)
    if up == down:
        return samples.copy()
    if samples.size < 2:
        raise ResampleError("need at least 2 samples to resample")
    return sp_signal.resample_poly(samples, up, down)


def resample_to(sig: Signal, to_hz: float = BASE_SAMPLE_RATE_HZ) -> Signal:
    """Resample a :class:`Signal` to ``to_hz``, preserving metadata.

    The onset annotation is rescaled by :meth:`Signal.with_data` so the
    anomaly onset stays at the same wall-clock instant.
    """
    if abs(sig.sample_rate_hz - to_hz) < 1e-9:
        return sig
    data = resample_array(sig.data, sig.sample_rate_hz, to_hz)
    return sig.with_data(data, sample_rate_hz=to_hz)
