"""Anomaly morphology injectors for the three evaluated disorders.

Each anomaly class is synthesised as a train of class-canonical sharp
transients superimposed on (and partly replacing) background EEG:

* **Seizure** — 3.5 Hz spike-and-wave complexes with a long preictal
  build-up, the classical generalized tonic-clonic signature.  The
  build-up is what makes *prediction* possible: windows taken 15–120 s
  before the annotated onset already carry a (weak, growing) ictal
  signature, so they correlate preferentially with ictal MDB slices.
* **Encephalopathy** — ~1.8 Hz triphasic waves over an attenuated,
  slowed background; the paper annotates these records as anomalous in
  their entirety, and so do we (onset at sample 0).
* **Stroke** — ~1.0 Hz periodic lateralized epileptiform discharges
  (PLED-like) over a strongly attenuated background, again annotated
  whole-record.

The transient *shapes* are canonical per class while repetition rate and
phase jitter per record; after the paper's 11–40 Hz bandpass each class
therefore retains a distinctive, cross-record-correlatable waveform —
the property the whole EMAP pipeline rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np  # noqa: F401  (re-exported in type signatures)

from repro.errors import SignalError
from repro.signals.generator import EEGGenerator
from repro.signals.types import AnomalyType, Signal

#: Default repetition rate of the class-canonical transient train (Hz).
DEFAULT_RATES_HZ: dict[AnomalyType, float] = {
    AnomalyType.SEIZURE: 3.5,
    AnomalyType.ENCEPHALOPATHY: 2.0,
    AnomalyType.STROKE: 1.2,
}

#: Default background attenuation during the anomalous span.
DEFAULT_ATTENUATION: dict[AnomalyType, float] = {
    AnomalyType.SEIZURE: 0.45,
    AnomalyType.ENCEPHALOPATHY: 0.30,
    AnomalyType.STROKE: 0.25,
}

#: Default transient peak amplitude (µV) per class.
DEFAULT_AMPLITUDES_UV: dict[AnomalyType, float] = {
    AnomalyType.SEIZURE: 260.0,
    AnomalyType.ENCEPHALOPATHY: 210.0,
    AnomalyType.STROKE: 170.0,
}


@dataclass(frozen=True)
class AnomalySpec:
    """Parameters of one anomalous episode.

    Parameters
    ----------
    kind:
        Which disorder to synthesise (must be anomalous).
    onset_s:
        Episode onset in seconds from record start.  ``None`` marks the
        whole record anomalous (the paper's handling of encephalopathy
        and stroke data).
    buildup_s:
        Length of the preictal amplitude ramp before onset (seizures).
    peak_amplitude_uv:
        Transient amplitude during the full-blown episode.
    preictal_fraction:
        Fraction of the peak amplitude reached right before onset.
    rate_hz:
        Transient repetition rate; defaults per class.
    rate_jitter_hz:
        Std-dev of the per-record rate perturbation.
    attenuation:
        Background multiplier inside the anomalous span; defaults per
        class.
    """

    kind: AnomalyType
    onset_s: float | None = None
    buildup_s: float = 150.0
    peak_amplitude_uv: float | None = None
    preictal_fraction: float = 0.65
    rate_hz: float | None = None
    rate_jitter_hz: float = 0.04
    attenuation: float | None = None
    ramp_exponent: float = 0.45
    label_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not self.kind.is_anomalous:
            raise SignalError("AnomalySpec requires an anomalous kind")
        if self.onset_s is not None and self.onset_s < 0:
            raise SignalError(f"onset must be non-negative, got {self.onset_s}")
        if self.buildup_s < 0:
            raise SignalError(
                f"buildup must be non-negative, got {self.buildup_s}"
            )
        if self.peak_amplitude_uv is not None and self.peak_amplitude_uv <= 0:
            raise SignalError(
                f"peak amplitude must be positive, got {self.peak_amplitude_uv}"
            )
        if not (0.0 <= self.preictal_fraction <= 1.0):
            raise SignalError(
                f"preictal fraction must be in [0, 1], got {self.preictal_fraction}"
            )
        if not (0.0 < self.label_fraction <= 1.0):
            raise SignalError(
                f"label fraction must be in (0, 1], got {self.label_fraction}"
            )
        if self.ramp_exponent <= 0:
            raise SignalError(
                f"ramp exponent must be positive, got {self.ramp_exponent}"
            )

    def effective_rate_hz(self) -> float:
        """The repetition rate, falling back to the class default."""
        if self.rate_hz is not None:
            return self.rate_hz
        return DEFAULT_RATES_HZ[self.kind]

    def effective_amplitude_uv(self) -> float:
        """The transient peak amplitude, falling back to the class default."""
        if self.peak_amplitude_uv is not None:
            return self.peak_amplitude_uv
        return DEFAULT_AMPLITUDES_UV[self.kind]

    def effective_attenuation(self) -> float:
        """The background attenuation, falling back to the class default."""
        if self.attenuation is not None:
            return self.attenuation
        return DEFAULT_ATTENUATION[self.kind]


def _gaussian(t: np.ndarray, center: float, width: float) -> np.ndarray:
    return np.exp(-0.5 * ((t - center) / width) ** 2)


def _damped_tail(
    t: np.ndarray,
    start: float,
    freq_hz: float,
    amplitude: float,
    decay_s: float,
) -> np.ndarray:
    """Phase-locked damped oscillation following a transient.

    The tail gives each class a *continuous* in-band signature whose
    phase is locked to the transient train, so aligning transients also
    aligns the oscillation — the property that keeps within-class
    correlations high over full inter-transient intervals.
    """
    tail = np.zeros_like(t)
    active = t >= start
    rel = t[active] - start
    tail[active] = (
        amplitude
        * np.sin(2.0 * np.pi * freq_hz * rel)
        * np.exp(-rel / decay_s)
    )
    return tail


def spike_wave_template(sample_rate_hz: float) -> np.ndarray:
    """Canonical epileptiform polyspike-and-wave complex (unit peak).

    Two sharp spikes 40 ms apart (in-band ~25 Hz doublet structure)
    followed by a slower after-going wave.  The doublet is what keeps
    the seizure shape distinctive *after* the 11–40 Hz bandpass, where
    an isolated spike would degenerate into generic filter ringing.
    """
    duration = 0.28
    t = np.arange(0.0, duration, 1.0 / sample_rate_hz)
    spikes = _gaussian(t, 0.03, 0.010) + 0.85 * _gaussian(t, 0.07, 0.010)
    wave = -0.50 * _gaussian(t, 0.16, 0.040)
    tail = _damped_tail(t, 0.10, 24.0, 0.25, 0.12)
    return spikes + wave + tail


def triphasic_template(sample_rate_hz: float) -> np.ndarray:
    """Canonical triphasic wave (negative–positive–negative, unit peak).

    Sharp alternating-polarity lobes 60 ms apart; the sign pattern is
    what separates it from the seizure doublet under the bandpass.
    """
    duration = 0.50
    t = np.arange(0.0, duration, 1.0 / sample_rate_hz)
    lobes = (
        -0.60 * _gaussian(t, 0.06, 0.012)
        + 1.00 * _gaussian(t, 0.12, 0.014)
        - 0.50 * _gaussian(t, 0.20, 0.018)
    )
    tail = _damped_tail(t, 0.22, 12.5, 0.35, 0.30)
    return lobes + tail


def pled_template(sample_rate_hz: float) -> np.ndarray:
    """Canonical periodic lateralized discharge (sharp biphasic, unit peak)."""
    duration = 0.80
    t = np.arange(0.0, duration, 1.0 / sample_rate_hz)
    lobes = _gaussian(t, 0.05, 0.013) - 0.70 * _gaussian(t, 0.11, 0.022)
    tail = _damped_tail(t, 0.16, 15.5, 0.35, 0.45)
    return lobes + tail


_TEMPLATES = {
    AnomalyType.SEIZURE: spike_wave_template,
    AnomalyType.ENCEPHALOPATHY: triphasic_template,
    AnomalyType.STROKE: pled_template,
}


def transient_template(kind: AnomalyType, sample_rate_hz: float) -> np.ndarray:
    """The class-canonical transient shape for ``kind`` (unit peak)."""
    try:
        factory = _TEMPLATES[kind]
    except KeyError:
        raise SignalError(f"no transient template for {kind}") from None
    return factory(sample_rate_hz)


def _transient_train(
    n_samples: int,
    sample_rate_hz: float,
    kind: AnomalyType,
    rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Unit-amplitude periodic train of the class transient."""
    if rate_hz <= 0:
        raise SignalError(f"transient rate must be positive, got {rate_hz}")
    template = transient_template(kind, sample_rate_hz)
    train = np.zeros(n_samples)
    period = sample_rate_hz / rate_hz
    if period < 1.0:
        raise SignalError(
            f"rate {rate_hz} Hz too fast for fs={sample_rate_hz} Hz"
        )
    start = rng.uniform(0.0, period)
    position = start
    while position < n_samples:
        index = int(round(position))
        stop = min(index + template.size, n_samples)
        if index < n_samples:
            train[index:stop] += template[: stop - index]
        position += period
    return train


@dataclass(frozen=True)
class InjectedAnomaly:
    """Result of superimposing an episode on background EEG.

    ``onset_sample`` is the clinical onset; ``label_start_sample`` is
    where the anomaly *annotation* begins (the paper's "preset" of the
    anomaly progression).  ``anomalous_spans`` are the sample intervals
    actually containing anomalous morphology: the preictal discharge
    bursts plus the ictal span itself — what the slicing stage labels
    against.
    """

    data: np.ndarray
    onset_sample: int
    label_start_sample: int
    anomalous_spans: tuple[tuple[int, int], ...]


def _taper(length: int, edge: int) -> np.ndarray:
    """Unit plateau with raised-cosine edges of ``edge`` samples."""
    window = np.ones(length)
    edge = min(edge, length // 2)
    if edge > 0:
        ramp = 0.5 * (1.0 - np.cos(np.pi * np.arange(edge) / edge))
        window[:edge] = ramp
        window[-edge:] = ramp[::-1]
    return window


def _episode_envelope(
    n_samples: int,
    sample_rate_hz: float,
    spec: AnomalySpec,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int, int, tuple[tuple[int, int], ...]]:
    """Relative (0–1) morphology envelope plus annotations.

    Whole-record anomalies get a flat envelope of 1 (onset 0, one span
    covering everything).  Onset-annotated anomalies model the preictal
    state the way clinical EEG shows it: intermittent full-amplitude
    **discharge bursts** (~3–5 s epochs) whose *occurrence probability*
    ramps as ``preictal_fraction · x^ramp_exponent`` across the
    build-up, followed by the continuous ictal state after the onset.
    Burst-density (rather than amplitude) ramping keeps every
    one-second window unambiguous — clearly background or clearly
    epileptiform — which is what lets the cloud search's fixed δ = 0.8
    admit matches throughout the build-up.
    """
    envelope = np.zeros(n_samples)
    if spec.onset_s is None:
        return np.ones(n_samples), 0, 0, ((0, n_samples),)

    onset = int(round(spec.onset_s * sample_rate_hz))
    onset = min(max(onset, 0), n_samples)
    buildup = int(round(spec.buildup_s * sample_rate_hz))
    ramp_start = max(onset - buildup, 0)
    edge = int(round(0.25 * sample_rate_hz))
    spans: list[tuple[int, int]] = []

    position = ramp_start
    while position < onset:
        epoch = int(round(rng.uniform(3.0, 5.0) * sample_rate_hz))
        stop = min(position + epoch, onset)
        if stop <= position:
            break
        mid = 0.5 * (position + stop)
        x = (mid - ramp_start) / max(onset - ramp_start, 1)
        probability = spec.preictal_fraction * x**spec.ramp_exponent
        if rng.random() < probability:
            envelope[position:stop] = _taper(stop - position, edge)
            spans.append((position, stop))
        position = stop

    if onset < n_samples:
        rise = min(edge, n_samples - onset)
        envelope[onset : onset + rise] = np.maximum(
            envelope[onset : onset + rise],
            0.5 * (1.0 - np.cos(np.pi * np.arange(rise) / max(rise, 1))),
        )
        envelope[onset + rise :] = 1.0
        spans.append((onset, n_samples))

    label_x = float(spec.label_fraction ** (1.0 / spec.ramp_exponent))
    label_start = ramp_start + int(round(label_x * (onset - ramp_start)))
    return envelope, onset, min(label_start, onset), tuple(spans)


def inject_anomaly(
    background: np.ndarray,
    spec: AnomalySpec,
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> InjectedAnomaly:
    """Superimpose an anomalous episode on background EEG.

    The background is attenuated inside the anomalous span (scaled
    smoothly by the envelope) and the class transient train is added
    with the per-sample amplitude envelope.
    """
    data = np.asarray(background, dtype=np.float64)
    if data.ndim != 1:
        raise SignalError(f"background must be 1-D, got shape {data.shape}")
    n_samples = data.size
    if n_samples == 0:
        raise SignalError("background must not be empty")

    rate = spec.effective_rate_hz() + rng.normal(0.0, spec.rate_jitter_hz)
    rate = max(rate, 0.1)
    train = _transient_train(n_samples, sample_rate_hz, spec.kind, rate, rng)
    envelope, onset, label_start, spans = _episode_envelope(
        n_samples, sample_rate_hz, spec, rng
    )

    # Attenuate the background in proportion to how anomalous each
    # sample is: fully attenuated inside bursts, untouched between them.
    attenuation = spec.effective_attenuation()
    background_gain = 1.0 - (1.0 - attenuation) * envelope
    amplitude = spec.effective_amplitude_uv()
    return InjectedAnomaly(
        data=data * background_gain + amplitude * envelope * train,
        onset_sample=onset,
        label_start_sample=label_start,
        anomalous_spans=spans,
    )


def make_anomalous_signal(
    generator: EEGGenerator,
    duration_s: float,
    spec: AnomalySpec,
    channel: str = "Fp1",
    source: str = "synthetic",
) -> Signal:
    """Compose background synthesis and anomaly injection into a Signal."""
    background = generator.background(duration_s)
    injected = inject_anomaly(
        background, spec, generator.spec.sample_rate_hz, generator.rng
    )
    return Signal(
        data=injected.data,
        sample_rate_hz=generator.spec.sample_rate_hz,
        label=spec.kind,
        channel=channel,
        source=source,
        onset_sample=injected.onset_sample,
        label_start_sample=injected.label_start_sample,
        anomalous_spans=injected.anomalous_spans,
    )
