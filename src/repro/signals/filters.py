"""FIR bandpass filtering (paper Eq. 1).

The paper specifies a 100-tap FIR bandpass with passband 11–40 Hz used
identically at the edge (on acquired frames) and in the cloud (on every
dataset recording before slicing).  Two call styles are provided:

* :class:`BandpassFilter` — one-shot filtering of a whole recording,
  used when building the mega-database.
* :class:`StreamingFIRFilter` — stateful sample-block filtering that
  carries the delay line across frames, modelling the hard-coded edge
  accelerator the paper suggests (Section V-A).

Both produce bit-identical output for the same sample stream, which is
asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.errors import FilterError
from repro.signals.types import BASE_SAMPLE_RATE_HZ, Signal

#: Paper's filter order: 100 taps (Eq. 1 sums h(0)..h(99)).
DEFAULT_NUM_TAPS = 100

#: Paper's passband edges in Hz.
DEFAULT_BAND_HZ = (11.0, 40.0)


@dataclass(frozen=True)
class FilterSpec:
    """Design parameters for the EMAP bandpass filter.

    Parameters
    ----------
    num_taps:
        FIR length.  The paper's Eq. 1 uses 100 taps; note an even tap
        count gives a type-II/IV filter, so we design with a Hamming
        window via ``scipy.signal.firwin`` which handles this correctly
        for bandpass responses.
    low_hz / high_hz:
        Passband edges.
    sample_rate_hz:
        Rate the filter is designed for; dataset recordings are
        resampled to this rate before filtering.
    """

    num_taps: int = DEFAULT_NUM_TAPS
    low_hz: float = DEFAULT_BAND_HZ[0]
    high_hz: float = DEFAULT_BAND_HZ[1]
    sample_rate_hz: float = BASE_SAMPLE_RATE_HZ

    def __post_init__(self) -> None:
        if self.num_taps < 2:
            raise FilterError(f"need at least 2 taps, got {self.num_taps}")
        if not (0 < self.low_hz < self.high_hz):
            raise FilterError(
                f"invalid passband [{self.low_hz}, {self.high_hz}] Hz"
            )
        nyquist = self.sample_rate_hz / 2
        if self.high_hz >= nyquist:
            raise FilterError(
                f"upper edge {self.high_hz} Hz must be below the Nyquist "
                f"frequency {nyquist} Hz"
            )

    def design(self) -> np.ndarray:
        """Design the FIR taps ``h(n)`` of Eq. 1.

        ``firwin`` with an even tap count cannot realise a true
        bandpass (type II has a forced zero at Nyquist but type II also
        forces a zero at π which is fine for bandpass; the problematic
        case is a passband including Nyquist, which ours never does), so
        the paper's 100 taps are used as-is.
        """
        return sp_signal.firwin(
            self.num_taps,
            [self.low_hz, self.high_hz],
            pass_zero=False,
            fs=self.sample_rate_hz,
            window="hamming",
        )


class BandpassFilter:
    """One-shot FIR bandpass filter over complete recordings.

    Applies the causal convolution of Eq. 1:
    ``B(k) = Σ_{i=0}^{taps-1} h(i) · I(k − i)`` with zero initial
    conditions, so output length equals input length and the group
    delay (~taps/2 samples) is preserved rather than compensated —
    matching what a streaming edge device actually emits.
    """

    def __init__(self, spec: FilterSpec | None = None) -> None:
        self.spec = spec or FilterSpec()
        self._taps = self.spec.design()

    @property
    def taps(self) -> np.ndarray:
        """The designed FIR coefficients (read-only copy)."""
        return self._taps.copy()

    def apply(self, data: np.ndarray) -> np.ndarray:
        """Filter a 1-D sample array, returning an equal-length array."""
        samples = np.asarray(data, dtype=np.float64)
        if samples.ndim != 1:
            raise FilterError(f"expected 1-D data, got shape {samples.shape}")
        if samples.size == 0:
            raise FilterError("cannot filter an empty signal")
        return sp_signal.lfilter(self._taps, [1.0], samples)

    def apply_signal(self, sig: Signal) -> Signal:
        """Filter a :class:`Signal`, preserving its metadata.

        Raises if the signal's rate differs from the design rate — the
        caller must resample first (the MDB build pipeline does).
        """
        if abs(sig.sample_rate_hz - self.spec.sample_rate_hz) > 1e-9:
            raise FilterError(
                f"signal sampled at {sig.sample_rate_hz} Hz but filter designed "
                f"for {self.spec.sample_rate_hz} Hz; resample first"
            )
        return sig.with_data(self.apply(sig.data))

    def frequency_response(self, n_points: int = 512) -> tuple[np.ndarray, np.ndarray]:
        """Return (frequencies in Hz, magnitude response)."""
        freqs, response = sp_signal.freqz(self._taps, worN=n_points, fs=self.spec.sample_rate_hz)
        return freqs, np.abs(response)

    def streaming(self) -> "StreamingFIRFilter":
        """Create a streaming filter sharing this design."""
        return StreamingFIRFilter(self.spec)


class StreamingFIRFilter:
    """Stateful FIR filter processing sample blocks of any size.

    Models the edge device's hard-coded filter accelerator: each call
    to :meth:`process` consumes one block (e.g. a 256-sample frame) and
    the delay line carries over, so concatenated block outputs equal the
    one-shot output of :class:`BandpassFilter` on the concatenated
    input.
    """

    def __init__(self, spec: FilterSpec | None = None) -> None:
        self.spec = spec or FilterSpec()
        self._taps = self.spec.design()
        self._state = np.zeros(len(self._taps) - 1)
        self._samples_processed = 0

    @property
    def samples_processed(self) -> int:
        """Total samples consumed since construction or last reset."""
        return self._samples_processed

    def process(self, block: np.ndarray) -> np.ndarray:
        """Filter one block of samples, updating internal state."""
        samples = np.asarray(block, dtype=np.float64)
        if samples.ndim != 1:
            raise FilterError(f"expected 1-D block, got shape {samples.shape}")
        if samples.size == 0:
            raise FilterError("cannot filter an empty block")
        output, self._state = sp_signal.lfilter(
            self._taps, [1.0], samples, zi=self._state
        )
        self._samples_processed += samples.size
        return output

    def reset(self) -> None:
        """Clear the delay line (start of a new recording)."""
        self._state = np.zeros(len(self._taps) - 1)
        self._samples_processed = 0
