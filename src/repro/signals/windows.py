"""Prefix-sum windowed statistics over signal slices.

The sliding-window search (Algorithm 1) needs the mean and centred norm
of arbitrary windows of each 1000-sample MDB slice.  Recomputing them
per offset would cost O(m) each; :class:`WindowedStats` precomputes two
prefix-sum arrays per slice so any window's statistics come out in O(1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SignalError
from repro.signals.metrics import NORM_EPSILON


class WindowedStats:
    """O(1) mean / centred-norm queries over windows of a 1-D series."""

    def __init__(self, data: np.ndarray) -> None:
        series = np.asarray(data, dtype=np.float64)
        if series.ndim != 1:
            raise SignalError(f"series must be 1-D, got shape {series.shape}")
        if series.size == 0:
            raise SignalError("series must not be empty")
        self._data = series
        self._prefix = np.concatenate(([0.0], np.cumsum(series)))
        self._prefix_sq = np.concatenate(([0.0], np.cumsum(series * series)))

    def __len__(self) -> int:
        return self._data.size

    @property
    def data(self) -> np.ndarray:
        """The underlying series (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    def _check_window(self, offset: int, length: int) -> None:
        if length <= 0:
            raise SignalError(f"window length must be positive, got {length}")
        if offset < 0 or offset + length > self._data.size:
            raise SignalError(
                f"window [{offset}, {offset + length}) outside series of "
                f"length {self._data.size}"
            )

    def window_sum(self, offset: int, length: int) -> float:
        """Σ data[offset : offset+length]."""
        self._check_window(offset, length)
        return float(self._prefix[offset + length] - self._prefix[offset])

    def window_mean(self, offset: int, length: int) -> float:
        """Mean of the window."""
        return self.window_sum(offset, length) / length

    def window_sq_sum(self, offset: int, length: int) -> float:
        """Σ data² over the window."""
        self._check_window(offset, length)
        return float(self._prefix_sq[offset + length] - self._prefix_sq[offset])

    def centered_norm(self, offset: int, length: int) -> float:
        """L2 norm of the mean-subtracted window.

        Computed as sqrt(Σx² − n·mean²); tiny negative intermediate
        values from floating-point cancellation are clamped to zero.
        """
        total = self.window_sum(offset, length)
        sq_total = self.window_sq_sum(offset, length)
        centered_sq = sq_total - total * total / length
        return float(np.sqrt(max(centered_sq, 0.0)))

    def is_flat(self, offset: int, length: int) -> bool:
        """Whether the window has (numerically) zero variance."""
        return self.centered_norm(offset, length) < NORM_EPSILON

    def normalized_correlation_with(
        self,
        window_centered: np.ndarray,
        window_norm: float,
        offset: int,
    ) -> float:
        """Normalised correlation against a precentred query window.

        ``window_centered`` must already be mean-subtracted and
        ``window_norm`` its L2 norm; this is the hot inner loop of
        Algorithm 1, so the query-side statistics are computed once by
        the caller.
        """
        length = window_centered.size
        self._check_window(offset, length)
        slice_norm = self.centered_norm(offset, length)
        # Flatness gates on the *product* of the norms — the same
        # criterion as normalized_cross_correlation and the compiled
        # search plane, so all three paths agree on near-flat windows.
        denominator = window_norm * slice_norm
        if denominator < NORM_EPSILON:
            return 0.0
        segment = self._data[offset : offset + length]
        # Window mean cancels against Σ window_centered = 0.
        dot = float(np.dot(window_centered, segment))
        value = dot / denominator
        return min(1.0, max(-1.0, value))
