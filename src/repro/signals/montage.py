"""Multi-channel recordings and 10-20 montage support.

The paper's sensor is a 10–20-standard electrode cap (Section II); the
pipeline itself is single-channel, so a deployed system must pick
*which* channel to track.  This module provides:

* the standard 10–20 electrode inventory and hemisphere/region helpers,
* :class:`MultiChannelRecording` — equal-length, equal-rate channels,
* channel selection: best quality score, or highest in-band power —
  both sensible strategies for feeding the single-channel EMAP loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalError
from repro.signals.quality import QualityAssessor
from repro.signals.types import Signal

#: The 10-20 standard electrode names (excluding reference/ground).
TEN_TWENTY_ELECTRODES = (
    "Fp1", "Fp2",
    "F7", "F3", "Fz", "F4", "F8",
    "T3", "C3", "Cz", "C4", "T4",
    "T5", "P3", "Pz", "P4", "T6",
    "O1", "O2",
)


def is_ten_twenty(channel: str) -> bool:
    """Whether a channel name belongs to the 10-20 standard set."""
    return channel in TEN_TWENTY_ELECTRODES


def hemisphere(channel: str) -> str:
    """'left', 'right' or 'midline' by 10-20 numbering convention."""
    if not is_ten_twenty(channel):
        raise SignalError(f"not a 10-20 electrode: {channel!r}")
    if channel.endswith("z"):
        return "midline"
    digit = int(channel[-1])
    return "left" if digit % 2 == 1 else "right"


@dataclass
class MultiChannelRecording:
    """Synchronised channels from one cap."""

    channels: dict[str, Signal]

    def __post_init__(self) -> None:
        if not self.channels:
            raise SignalError("need at least one channel")
        lengths = {len(sig) for sig in self.channels.values()}
        rates = {sig.sample_rate_hz for sig in self.channels.values()}
        if len(lengths) != 1:
            raise SignalError(f"channel lengths differ: {sorted(lengths)}")
        if len(rates) != 1:
            raise SignalError(f"channel rates differ: {sorted(rates)}")
        for name, sig in self.channels.items():
            if sig.channel != name:
                raise SignalError(
                    f"channel key {name!r} does not match signal channel "
                    f"{sig.channel!r}"
                )

    def __len__(self) -> int:
        return len(next(iter(self.channels.values())))

    @property
    def channel_names(self) -> tuple[str, ...]:
        return tuple(self.channels)

    @property
    def sample_rate_hz(self) -> float:
        return next(iter(self.channels.values())).sample_rate_hz

    def get(self, name: str) -> Signal:
        try:
            return self.channels[name]
        except KeyError:
            known = ", ".join(self.channels)
            raise SignalError(f"no channel {name!r}; have: {known}") from None

    def average_reference(self) -> "MultiChannelRecording":
        """Re-reference every channel to the common average."""
        stack = np.vstack([sig.data for sig in self.channels.values()])
        mean = stack.mean(axis=0)
        rereferenced = {
            name: sig.with_data(sig.data - mean)
            for name, sig in self.channels.items()
        }
        return MultiChannelRecording(channels=rereferenced)

    def select_by_quality(
        self, assessor: QualityAssessor | None = None, frame_samples: int = 256
    ) -> Signal:
        """The channel with the highest fraction of usable frames."""
        grader = assessor or QualityAssessor(sample_rate_hz=self.sample_rate_hz)
        best_name = None
        best_score = -1.0
        for name, sig in self.channels.items():
            score = grader.usable_fraction(sig.data, frame_samples)
            if score > best_score:
                best_score = score
                best_name = name
        return self.channels[best_name]

    def select_by_band_power(
        self, low_hz: float = 11.0, high_hz: float = 40.0
    ) -> Signal:
        """The channel with the most energy in the EMAP passband.

        A crude but effective pick for anomaly monitoring: epileptiform
        activity concentrates in-band energy on the involved channels.
        """
        if not (0 < low_hz < high_hz < self.sample_rate_hz / 2):
            raise SignalError(f"invalid band [{low_hz}, {high_hz}] Hz")
        from scipy import signal as sp_signal

        best_name = None
        best_power = -1.0
        for name, sig in self.channels.items():
            nperseg = min(len(sig), 512)
            freqs, psd = sp_signal.welch(
                sig.data, fs=self.sample_rate_hz, nperseg=nperseg
            )
            mask = (freqs >= low_hz) & (freqs <= high_hz)
            power = float(np.trapezoid(psd[mask], freqs[mask]))
            if power > best_power:
                best_power = power
                best_name = name
        return self.channels[best_name]
