"""The checked-in metric name registry.

Every metric the framework emits through :mod:`repro.obs` appears here
with its instrument kind, and emaplint's EM010 pins both directions:
an emission whose name (or kind) is missing from this registry is a
lint failure, and so is a registry entry nothing emits.  Dashboards,
DESIGN.md's figure-to-metric map, and the benchmark-regression gate
address series by these strings — this file is what makes renaming one
a reviewed decision instead of a silent flatline.

``METRIC_NAMES`` holds exact names.  ``METRIC_PREFIXES`` holds dynamic
families (f-string names such as ``obs.span.<name>.s``): an emission
matches if its literal prefix — the text before the first formatted
field — starts with a registered family prefix.

Both mappings are plain literals: EM010 reads them from the AST, so
the registry stays checkable without importing the package.
"""

from __future__ import annotations

#: metric name -> instrument kind ("counter" | "gauge" | "histogram").
METRIC_NAMES: dict[str, str] = {
    # -- cloud search (Algorithm 1 + two-stage screen) ----------------
    "cloud.search.requests": "counter",
    "cloud.search.batches": "counter",
    "cloud.search.batch_size": "histogram",
    "cloud.search.slices_scanned": "counter",
    "cloud.search.correlations_evaluated": "counter",
    "cloud.search.candidates_above_threshold": "counter",
    "cloud.search.heap_admissions": "counter",
    "cloud.search.elapsed_s": "histogram",
    "cloud.search.stage1_s": "histogram",
    "cloud.search.stage2_s": "histogram",
    # -- compiled search plane ----------------------------------------
    "cloud.plane.builds": "counter",
    "cloud.plane.build_s": "histogram",
    "cloud.plane.slices": "gauge",
    "cloud.plane.compiled_bytes": "gauge",
    "cloud.plane.shared_bytes": "gauge",
    "cloud.plane.cache_hits": "counter",
    "cloud.plane.cache_misses": "counter",
    "cloud.plane.norm_cache_build_s": "histogram",
    "cloud.plane.coarse.cache_hits": "counter",
    "cloud.plane.coarse.cache_misses": "counter",
    "cloud.plane.coarse.build_s": "histogram",
    "cloud.plane.coarse.compiled_bytes": "gauge",
    "cloud.plane.coarse.screens": "counter",
    "cloud.plane.coarse.slices_pruned": "counter",
    "cloud.plane.coarse.prune_rate": "histogram",
    "cloud.plane.coarse.bound_margin": "histogram",
    "cloud.plane.coarse.keep_floor": "histogram",
    "cloud.plane.shard.count": "gauge",
    "cloud.plane.shard.compiled": "counter",
    "cloud.plane.shard.reused": "counter",
    "cloud.plane.shard.delta_compile_s": "histogram",
    "cloud.plane.shard.full_compile_s": "histogram",
    "cloud.plane.shard.merge_s": "histogram",
    # -- partitioned / pooled search ----------------------------------
    "cloud.parallel.elapsed_s": "histogram",
    "cloud.parallel.chunk_elapsed_s": "histogram",
    "cloud.parallel.pool_builds": "counter",
    "cloud.parallel.pool_reuse": "counter",
    # -- cloud server + resilient client ------------------------------
    "cloud.server.refreshes": "counter",
    "cloud.server.batches": "counter",
    "cloud.server.batch_size": "histogram",
    "cloud.server.calls_served": "counter",
    "cloud.server.signals_returned": "counter",
    "cloud.server.phase.upload_s": "histogram",
    "cloud.server.phase.search_s": "histogram",
    "cloud.server.phase.download_s": "histogram",
    "cloud.server.phase.initial_s": "histogram",
    "cloud.client.retries": "counter",
    "cloud.client.timeouts": "counter",
    "cloud.client.failures": "counter",
    "cloud.client.fast_fails": "counter",
    "cloud.client.breaker_state": "gauge",
    # -- serving gateway ----------------------------------------------
    "gateway.requests": "counter",
    "gateway.rejected": "counter",
    "gateway.failures": "counter",
    "gateway.batches": "counter",
    "gateway.batch_size": "histogram",
    "gateway.queue_depth": "gauge",
    "gateway.request_latency_s": "histogram",
    # -- edge tracking plane ------------------------------------------
    "edge.plane.compiles": "counter",
    "edge.plane.compile_s": "histogram",
    "edge.plane.compactions": "counter",
    "edge.plane.candidates": "gauge",
    "edge.plane.compiled_bytes": "gauge",
    "edge.tracker.iterations": "counter",
    "edge.tracker.area_evaluations": "counter",
    "edge.tracker.candidates_pruned": "counter",
    "edge.tracker.tracked": "gauge",
    "edge.tracker.step_s": "histogram",
    "edge.tracker.evaluations_per_s": "histogram",
    "edge.fleet.steps": "counter",
    "edge.fleet.step_s": "histogram",
    "edge.fleet.area_evaluations": "counter",
    "edge.fleet.cache_hits": "counter",
    "edge.fleet.cache_misses": "counter",
    "edge.fleet.sessions": "gauge",
    "edge.fleet.unique_slices": "gauge",
    "edge.fleet.tracked_references": "gauge",
    "edge.fleet.compiled_bytes": "gauge",
    "edge.fleet.fused_step_s": "histogram",
    "edge.fleet.fused_groups": "histogram",
    "edge.fleet.fused_queries_per_group": "histogram",
    "edge.fleet.fused_kernel_threads": "gauge",
    # -- edge device + predictor --------------------------------------
    "edge.device.frames_acquired": "counter",
    "edge.device.cloud_calls": "counter",
    "edge.device.set_refreshes": "counter",
    "edge.device.set_size": "histogram",
    "edge.predictor.observations": "counter",
    "edge.predictor.predictions": "counter",
    "edge.predictor.predictions_anomalous": "counter",
    "edge.predictor.pa": "gauge",
    "edge.predictor.ema": "gauge",
    "edge.predictor.pa_estimate": "histogram",
    # -- runtime loop --------------------------------------------------
    "runtime.sessions": "counter",
    "runtime.loop.iterations": "counter",
    "runtime.loop.deadline_misses": "counter",
    "runtime.loop.budget_used": "histogram",
    "runtime.loop.edge_iteration_s": "histogram",
    "runtime.degraded_iterations": "counter",
    "runtime.cloud_failures": "counter",
    "runtime.initial_latency_s": "histogram",
    "runtime.stream.frames": "counter",
    "runtime.stream.frame_s": "histogram",
    # -- network link --------------------------------------------------
    "network.uploads": "counter",
    "network.downloads": "counter",
    "network.bytes_up": "counter",
    "network.bytes_down": "counter",
    "network.upload_s": "histogram",
    "network.download_s": "histogram",
    # -- fault injection -----------------------------------------------
    "faults.injected": "counter",
    # -- runtime sanitizer ---------------------------------------------
    "obs.sanitize.runs": "counter",
    "obs.sanitize.stalls": "counter",
    "obs.sanitize.stall_s": "histogram",
    "obs.sanitize.leaked_tasks": "counter",
    "obs.sanitize.leaked_segments": "counter",
    "obs.sanitize.memory_growth_bytes": "gauge",
}

#: dynamic name-family prefix -> instrument kind.
METRIC_PREFIXES: dict[str, str] = {
    "faults.injected.": "counter",
    "obs.span.": "histogram",
    "obs.timer.": "histogram",
}
