"""Opt-in profiling hooks for the hot paths.

Two granularities:

* :class:`NsTimer` — a ``perf_counter_ns`` sampling timer for regions
  too hot to trace on every call: it times only every ``sample_every``-th
  invocation and feeds the samples to a registry histogram, so steady
  state costs one integer increment per call.
* :func:`profile_block` — a full ``cProfile`` capture around a block,
  summarised to the top functions by cumulative time.  Heavyweight, so
  it is guarded by its own switch on top of the obs enable flag; the
  captured summaries are retained for the ``emap obs`` export.

Both degrade to near-zero cost when profiling is off.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from types import TracebackType
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Profile summaries retained for export (oldest dropped first).
MAX_RETAINED_PROFILES = 32


class NsTimer:
    """Sampling nanosecond timer around a hot call site.

    ::

        timer = NsTimer("edge.area_scan", registry, sample_every=16)
        ...
        with timer:
            scan()

    Only every ``sample_every``-th entry is actually timed; the rest
    cost a single counter increment and branch.
    """

    __slots__ = ("name", "registry", "sample_every", "calls", "_start_ns")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        sample_every: int = 16,
    ) -> None:
        self.name = name
        self.registry = registry
        self.sample_every = max(1, int(sample_every))
        self.calls = 0
        self._start_ns = 0

    def __enter__(self) -> "NsTimer":
        self.calls += 1
        if self.registry.enabled and self.calls % self.sample_every == 0:
            self._start_ns = time.perf_counter_ns()
        else:
            self._start_ns = 0
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._start_ns:
            elapsed_s = (time.perf_counter_ns() - self._start_ns) * 1e-9
            self.registry.observe(f"obs.timer.{self.name}.s", elapsed_s)


class ProfileStore:
    """Retains cProfile summaries captured by :func:`profile_block`."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._summaries: list[dict] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def add(self, name: str, elapsed_s: float, top_functions: str) -> None:
        self._summaries.append(
            {"name": name, "elapsed_s": elapsed_s, "top_functions": top_functions}
        )
        if len(self._summaries) > MAX_RETAINED_PROFILES:
            del self._summaries[: len(self._summaries) - MAX_RETAINED_PROFILES]

    def export(self) -> list[dict]:
        return list(self._summaries)

    def reset(self) -> None:
        self._summaries.clear()


@contextmanager
def profile_block(
    name: str,
    store: ProfileStore,
    limit: int = 25,
    sort: str = "cumulative",
) -> Iterator[None]:
    """cProfile the block when the store's profiling switch is on.

    When off, the only cost is one attribute check — the block runs
    uninstrumented.
    """
    if not store.enabled:
        yield
        return
    profiler = cProfile.Profile()
    start_ns = time.perf_counter_ns()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        elapsed_s = (time.perf_counter_ns() - start_ns) * 1e-9
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        store.add(name, elapsed_s, buffer.getvalue())
