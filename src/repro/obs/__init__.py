"""``repro.obs`` — the unified observability layer.

One module-level registry + tracer + profile store serve the whole
process; every tier of the framework (cloud search, edge tracking,
network link, runtime loop) records into them through this facade::

    from repro import obs

    obs.enable()
    ... run a session ...
    document = obs.export()          # JSON-serialisable
    obs.metrics().counter_value("cloud.search.correlations_evaluated")

Observability is **disabled by default**: every instrument call starts
with a single boolean check and returns, so un-instrumented behaviour
(and the Fig. 7(b) wall-clock benches) pay effectively nothing.  The
``emap obs`` CLI, the benchmark harness, and the tests flip it on.

Metric-name convention: dotted ``tier.component.quantity`` with an
``_s`` suffix for seconds (``cloud.search.elapsed_s``) — DESIGN.md maps
each paper figure to the metric names that reproduce it.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import NsTimer, ProfileStore, profile_block
from repro.obs.report import format_report
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NsTimer",
    "ProfileStore",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "export",
    "format_report",
    "metrics",
    "profile_block",
    "profiles",
    "reset",
    "trace",
    "tracer",
]

#: The process-wide registry.  Starts disabled (no-op mode).
_registry = MetricsRegistry(enabled=False)

#: The process-wide tracer, feeding span histograms into the registry.
trace = Tracer(registry=_registry, enabled=False)

#: The process-wide cProfile store (its own opt-in switch; see
#: :func:`enable`'s ``profiling`` flag).
_profiles = ProfileStore(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-wide tracer (also importable directly as ``trace``)."""
    return trace


def profiles() -> ProfileStore:
    """The process-wide cProfile summary store."""
    return _profiles


def enable(profiling: bool = False) -> None:
    """Turn metrics + tracing on (and optionally cProfile capture)."""
    _registry.enable()
    trace.enable()
    if profiling:
        _profiles.enable()


def disable() -> None:
    """Back to zero-overhead no-op mode (collected data is retained)."""
    _registry.disable()
    trace.disable()
    _profiles.disable()


def enabled() -> bool:
    """Whether the metrics layer is currently recording."""
    return _registry.enabled


def reset() -> None:
    """Drop all collected metrics, spans, and profiles."""
    _registry.reset()
    trace.reset()
    _profiles.reset()


def export() -> dict:
    """One JSON-serialisable document with everything collected."""
    return {
        "enabled": enabled(),
        "metrics": _registry.as_dict(),
        "spans": trace.export(),
        "profiles": _profiles.export(),
    }
