"""Human-readable rendering of an exported observability document.

The ``emap obs`` subcommand prints this; ``--json`` bypasses it and
emits the raw :func:`repro.obs.export` document instead.
"""

from __future__ import annotations


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    if abs(value) >= 0.01:
        return f"{value:.4f}"
    return f"{value:.3e}"


def _span_lines(span: dict, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    meta = ", ".join(f"{k}={v}" for k, v in sorted(span["metadata"].items()))
    suffix = f"  [{meta}]" if meta else ""
    lines.append(f"{pad}{span['name']:<28} {span['elapsed_s'] * 1e3:9.3f} ms{suffix}")
    for child in span["children"]:
        _span_lines(child, depth + 1, lines)


def format_report(document: dict, max_spans: int = 10) -> str:
    """Render one :func:`repro.obs.export` document as a text report."""
    metrics = document.get("metrics", {})
    lines: list[str] = ["== observability report =="]

    counters = metrics.get("counters", {})
    if counters:
        lines.append("\n-- counters --")
        for name, value in counters.items():
            lines.append(f"{name:<44} {_format_value(value):>12}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("\n-- gauges --")
        for name, value in gauges.items():
            lines.append(f"{name:<44} {_format_value(value):>12}")

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("\n-- histograms --")
        header = (
            f"{'name':<40} {'count':>7} {'mean':>11} {'p50':>11} "
            f"{'p95':>11} {'p99':>11} {'max':>11}"
        )
        lines.append(header)
        for name, summary in histograms.items():
            lines.append(
                f"{name:<40} {summary['count']:>7} "
                f"{summary['mean']:>11.4g} {summary['p50']:>11.4g} "
                f"{summary['p95']:>11.4g} {summary['p99']:>11.4g} "
                f"{summary['max']:>11.4g}"
            )

    spans = document.get("spans", [])
    if spans:
        lines.append(f"\n-- last root spans (up to {max_spans}) --")
        for span in spans[-max_spans:]:
            _span_lines(span, 0, lines)

    profiles = document.get("profiles", [])
    if profiles:
        lines.append("\n-- cProfile captures --")
        for profile in profiles:
            lines.append(
                f"[{profile['name']} — {profile['elapsed_s'] * 1e3:.1f} ms]"
            )
            lines.append(profile["top_functions"].rstrip())

    if len(lines) == 1:
        lines.append("(no metrics recorded — was observability enabled?)")
    return "\n".join(lines)
