"""Span-based tracing for the cloud-edge pipeline.

A span measures one region of interest::

    with trace.span("cloud.search", slices=420) as span:
        ...
    print(span.elapsed_s)

Spans nest: a span opened while another is active on the same thread
becomes its child, so one ``cloud.parallel_search`` root can show its
per-chunk ``cloud.search_chunk`` children.  Every finished span feeds
an ``obs.span.<name>.s`` histogram in the metrics registry, and the
tracer keeps the most recent root spans (with their trees) for the
``emap obs`` report and JSON export.

Timing semantics matter to callers: :meth:`Span.__exit__` always
computes ``elapsed_s`` from ``perf_counter_ns`` — even when the tracer
is disabled — because `SearchResult.elapsed_s` and the Fig. 7(b)
exploration-time benches are built on it.  Disabled mode only skips
*recording* (no registry traffic, no retained spans), which keeps the
overhead to two clock reads per span.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Root spans retained for export (oldest dropped first).
MAX_RETAINED_ROOTS = 256


@dataclass
class Span:
    """One timed region; context-manager protocol starts/stops it."""

    name: str
    tracer: "Tracer | None" = None
    metadata: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    start_ns: int = 0
    end_ns: int = 0
    #: Whether this span went onto the tracer's stack at entry; the
    #: exit path pops on this, not on the *current* enabled flag, so a
    #: disable() while a span is open cannot leak it on the stack.
    pushed: bool = field(default=False, repr=False)

    @property
    def elapsed_s(self) -> float:
        """Wall time of the span (0 until it has finished)."""
        if self.end_ns <= self.start_ns:
            return 0.0
        return (self.end_ns - self.start_ns) * 1e-9

    def annotate(self, **metadata: object) -> None:
        """Attach metadata to the span (merged into any existing keys)."""
        self.metadata.update(metadata)

    def __enter__(self) -> "Span":
        if self.tracer is not None and self.tracer.enabled:
            self.pushed = True
            self.tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.end_ns = time.perf_counter_ns()
        if self.pushed:
            self.tracer._pop(self)

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "metadata": dict(self.metadata),
            "children": [child.as_dict() for child in self.children],
        }


class Tracer:
    """Creates spans, tracks per-thread nesting, retains root spans."""

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        enabled: bool = True,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # -- switching -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- span lifecycle ------------------------------------------------

    def span(self, name: str, **metadata: object) -> "Span":
        """A new span; use as a context manager."""
        return Span(name=name, tracer=self, metadata=metadata)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate enable/disable mid-span: only pop what we pushed.
        if stack and stack[-1] is span:
            stack.pop()
            if not stack:
                with self._lock:
                    self._roots.append(span)
                    if len(self._roots) > MAX_RETAINED_ROOTS:
                        del self._roots[: len(self._roots) - MAX_RETAINED_ROOTS]
        if self.registry is not None:
            self.registry.observe(f"obs.span.{span.name}.s", span.elapsed_s)

    # -- export --------------------------------------------------------

    @property
    def active_span(self) -> Span | None:
        """The innermost span open on the calling thread."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def export(self) -> list[dict]:
        """JSON-serialisable trees of the retained root spans."""
        return [span.as_dict() for span in self.roots()]

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()
