"""Process-local metrics: counters, gauges, and quantile histograms.

One :class:`MetricsRegistry` holds every instrument the framework
emits.  Instruments are created lazily by name (``registry.inc``,
``registry.set_gauge``, ``registry.observe``), so instrumented code
never needs setup calls, and a *disabled* registry turns every
recording method into a cheap early-return — the zero-overhead no-op
mode the hot paths rely on.

Design constraints, in order:

* **Cheap when disabled.**  Every mutating method checks one boolean
  before doing anything; no locks, no allocation.
* **Thread-safe when enabled.**  A single lock guards the instrument
  maps and every update; :class:`ParallelSearch` worker threads and
  the streaming monitor can record concurrently.
* **Machine-readable.**  ``as_dict`` / ``to_json`` export everything
  (histograms with count/sum/min/max/mean/p50/p95/p99) for the CI
  benchmark-regression gate; ``merge_dict`` folds an exported document
  back in, which is how per-process worker metrics are aggregated.
"""

from __future__ import annotations

import json
import threading
from bisect import insort
from typing import Any, Mapping, TypedDict

from repro.errors import ObservabilityError

#: Histograms decimate (keep every other sample) past this many samples
#: so a long session cannot grow memory without bound; percentiles stay
#: representative for roughly stationary streams because decimation is
#: uniform over the sorted sample (a strongly trending stream biases
#: percentiles toward its recent values — count/sum/min/max stay exact).
HISTOGRAM_MAX_SAMPLES = 8192

#: Percentiles every histogram exports.
HISTOGRAM_PERCENTILES = (50, 95, 99)


class HistogramSummary(TypedDict, total=False):
    """Exported shape of one histogram (see :meth:`Histogram.as_dict`).

    ``total=False`` because the ``p<N>`` keys follow
    :data:`HISTOGRAM_PERCENTILES`; count/sum/min/max/mean are always
    present.
    """

    count: float
    sum: float
    min: float
    max: float
    mean: float
    p50: float
    p95: float
    p99: float


class MetricsDocument(TypedDict):
    """Exported shape of a whole registry (``as_dict``/``to_json``)."""

    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, HistogramSummary]


def _percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(pct / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[int(rank)]


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A sampled distribution with nearest-rank percentiles.

    Samples are kept in sorted order (insertion via ``bisect``), so
    export never re-sorts; past :data:`HISTOGRAM_MAX_SAMPLES` the
    sample list is uniformly decimated while count/sum/min/max remain
    exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sorted: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        insort(self._sorted, value)
        if len(self._sorted) > HISTOGRAM_MAX_SAMPLES:
            del self._sorted[::2]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        return _percentile(self._sorted, pct)

    def as_dict(self) -> HistogramSummary:
        summary: HistogramSummary = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        for pct in HISTOGRAM_PERCENTILES:
            summary[f"p{pct}"] = self.percentile(pct)  # type: ignore[literal-required]
        return summary


class MetricsRegistry:
    """Thread-safe, name-keyed home of every instrument.

    ``enabled=False`` (or :meth:`disable`) turns all recording methods
    into no-ops; read/export methods keep working so a disabled
    registry exports an empty-but-valid document.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switching -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- recording (each starts with the cheap enabled check) ----------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (created on first use)."""
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (created on first use)."""
        if not self.enabled:
            return
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.observe(value)

    # -- reading -------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter else 0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge else 0.0

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    # -- export / merge ------------------------------------------------

    def as_dict(self) -> MetricsDocument:
        """JSON-serialisable snapshot of every instrument."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def merge_dict(self, document: MetricsDocument | Mapping[str, Any]) -> None:
        """Fold an exported metrics document into this registry.

        Counters add, gauges take the incoming value, histogram
        summaries are folded as exact min/max plus ``count - 2``
        interior samples sized so count/sum/min/max/mean all stay
        exact; percentile fidelity is approximate — good enough for
        aggregating short-lived worker processes.
        """
        if not self.enabled:
            return
        for name, value in document.get("counters", {}).items():
            self.inc(name, int(value))
        for name, value in document.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, summary in document.get("histograms", {}).items():
            count = int(summary.get("count", 0))
            if count <= 0:
                continue
            total = summary.get("sum", summary.get("mean", 0.0) * count)
            self.observe(name, summary["min"])
            if count > 1:
                self.observe(name, summary["max"])
            if count > 2:
                interior = (total - summary["min"] - summary["max"]) / (count - 2)
                for _ in range(count - 2):
                    self.observe(name, interior)

    def reset(self) -> None:
        """Drop every instrument (new session)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
