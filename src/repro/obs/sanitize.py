"""Runtime concurrency sanitizer (``EMAP_SANITIZE=1``).

The static pass (``tools/emaplint`` EM007–EM012) proves properties the
call graph can see; this module catches the dynamic remainder while a
suite runs:

* **Loop stalls** — a heartbeat coroutine sleeps ``poll_interval_s`` and
  measures scheduling drift; drift beyond ``stall_threshold_s`` means
  something held the event loop (a blocking call EM007 could not reach,
  a pathological callback).  The loop's ``slow_callback_duration`` is
  lowered to the same threshold and debug mode enabled so asyncio's own
  log line attributes the offending callback.
* **Task leaks** — tasks spawned during the run that are still pending
  when the entry coroutine returns.  ``asyncio.run`` silently cancels
  these; the sanitizer reports them first, because a forgotten task is
  exactly the bug EM008 flags statically.
* **Memory growth** — a :mod:`tracemalloc` before/after delta (after a
  forced GC) over ``memory_growth_limit_bytes`` fails the run.
* **SharedMemory leaks** — segments created during the run and never
  unlinked.  Leaked segments outlive the process and poison later runs
  on the same host.

Everything is opt-in: when ``EMAP_SANITIZE`` is unset,
:func:`run_sanitized` is a plain ``asyncio.run`` and no instrumentation
is installed, so tier-1 wall time is unchanged.  The CI ``sanitize``
lane exports ``EMAP_SANITIZE=1`` and re-runs the gateway, chaos, and
soak suites; the :mod:`tests.conftest` hook reroutes every
``asyncio.run`` call through here in that mode.
"""

from __future__ import annotations

import asyncio
import gc
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Coroutine

from repro import obs
from repro.errors import SanitizerError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SANITIZE_ENV",
    "Sanitizer",
    "SanitizerReport",
    "run_sanitized",
    "sanitize_enabled",
]

SANITIZE_ENV = "EMAP_SANITIZE"


def sanitize_enabled() -> bool:
    """True when the environment opts into the sanitizer harness."""
    return os.environ.get(SANITIZE_ENV) == "1"


@dataclass
class SanitizerReport:
    """What one sanitized run observed, plus the budget verdicts."""

    stalls: list[float] = field(default_factory=list)
    leaked_tasks: list[str] = field(default_factory=list)
    leaked_segments: list[str] = field(default_factory=list)
    memory_growth_bytes: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.ok:
            return "sanitizer: clean"
        lines = ["sanitizer: FAILED"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


class Sanitizer:
    """One run's instrumentation: install, observe, judge.

    Lifecycle: :meth:`install` inside the running loop,
    :meth:`finalize` after the entry coroutine returns (still inside
    the loop, so pending tasks are observable), :meth:`close` after the
    loop is torn down (memory and segment verdicts).
    """

    def __init__(
        self,
        *,
        stall_threshold_s: float = 0.25,
        poll_interval_s: float = 0.05,
        memory_growth_limit_bytes: int = 64 * 1024 * 1024,
        track_memory: bool = True,
    ) -> None:
        if stall_threshold_s <= 0.0 or poll_interval_s <= 0.0:
            raise SanitizerError("sanitizer thresholds must be positive")
        self.stall_threshold_s = stall_threshold_s
        self.poll_interval_s = poll_interval_s
        self.memory_growth_limit_bytes = memory_growth_limit_bytes
        self.track_memory = track_memory
        self.report = SanitizerReport()
        self._registry: MetricsRegistry = obs.metrics()
        self._baseline_tasks: set[asyncio.Task] = set()
        self._monitor_task: asyncio.Task | None = None
        self._segments: dict[str, bool] = {}  #: name -> created here
        self._saved_shm: tuple[Any, Any] | None = None
        self._started_tracing = False
        self._memory_baseline = 0
        self._finalized = False

    # -- lifecycle ------------------------------------------------------

    def install(self, loop: asyncio.AbstractEventLoop) -> None:
        loop.slow_callback_duration = self.stall_threshold_s
        loop.set_debug(True)
        self._baseline_tasks = set(asyncio.all_tasks(loop))
        self._patch_shared_memory()
        if self.track_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracing = True
            gc.collect()
            self._memory_baseline = tracemalloc.get_traced_memory()[0]
        self._monitor_task = loop.create_task(
            self._monitor(), name="emap-sanitizer-monitor"
        )

    async def finalize(self) -> None:
        """Stop the heartbeat and snapshot pending tasks (in-loop)."""
        self._finalized = True
        monitor = self._monitor_task
        if monitor is not None:
            monitor.cancel()
            try:
                await monitor
            except asyncio.CancelledError:
                pass
        current = asyncio.current_task()
        loop = asyncio.get_running_loop()
        for task in asyncio.all_tasks(loop):
            if task is current or task is monitor:
                continue
            if task in self._baseline_tasks or task.done():
                continue
            self.report.leaked_tasks.append(self._describe_task(task))

    def close(self) -> SanitizerReport:
        """Judge the run after the loop has been torn down."""
        self._unpatch_shared_memory()
        self.report.leaked_segments.extend(
            sorted(name for name, created in self._segments.items() if created)
        )
        if self.track_memory:
            gc.collect()
            current = tracemalloc.get_traced_memory()[0]
            self.report.memory_growth_bytes = max(
                0, current - self._memory_baseline
            )
            if self._started_tracing:
                tracemalloc.stop()
        self._judge()
        self._emit_metrics()
        return self.report

    # -- detectors ------------------------------------------------------

    async def _monitor(self) -> None:
        """Heartbeat: scheduling drift beyond the threshold is a stall."""
        while True:
            before = time.monotonic()
            try:
                await asyncio.sleep(self.poll_interval_s)
            except asyncio.CancelledError:
                # A stall that ends exactly at shutdown still counts:
                # measure the beat we were cancelled out of.
                self._record_drift(before)
                raise
            self._record_drift(before)

    def _record_drift(self, before: float) -> None:
        drift = time.monotonic() - before - self.poll_interval_s
        if drift >= self.stall_threshold_s:
            self.report.stalls.append(drift)

    @staticmethod
    def _describe_task(task: asyncio.Task) -> str:
        coro = task.get_coro()
        target = getattr(coro, "__qualname__", repr(coro))
        return f"{task.get_name()} ({target})"

    def _patch_shared_memory(self) -> None:
        if self._saved_shm is not None:
            return
        original_init = shared_memory.SharedMemory.__init__
        original_unlink = shared_memory.SharedMemory.unlink
        segments = self._segments

        def tracking_init(self_, name=None, create=False, size=0):
            original_init(self_, name=name, create=create, size=size)
            if create:
                segments[self_.name] = True

        def tracking_unlink(self_):
            segments[self_.name] = False
            original_unlink(self_)

        shared_memory.SharedMemory.__init__ = tracking_init
        shared_memory.SharedMemory.unlink = tracking_unlink
        self._saved_shm = (original_init, original_unlink)

    def _unpatch_shared_memory(self) -> None:
        if self._saved_shm is None:
            return
        original_init, original_unlink = self._saved_shm
        shared_memory.SharedMemory.__init__ = original_init
        shared_memory.SharedMemory.unlink = original_unlink
        self._saved_shm = None

    # -- verdicts -------------------------------------------------------

    def _judge(self) -> None:
        report = self.report
        if report.stalls:
            worst = max(report.stalls)
            report.violations.append(
                f"event loop stalled {len(report.stalls)}x "
                f"(worst {worst:.3f}s > {self.stall_threshold_s:.3f}s "
                "budget); a coroutine is blocking the loop"
            )
        if report.leaked_tasks:
            names = ", ".join(report.leaked_tasks)
            report.violations.append(
                f"{len(report.leaked_tasks)} task(s) still pending at "
                f"exit: {names}; await, cancel, or scope them"
            )
        if report.leaked_segments:
            names = ", ".join(report.leaked_segments)
            report.violations.append(
                f"SharedMemory segment(s) never unlinked: {names}"
            )
        if (
            self.track_memory
            and report.memory_growth_bytes > self.memory_growth_limit_bytes
        ):
            report.violations.append(
                f"traced memory grew {report.memory_growth_bytes} bytes "
                f"(limit {self.memory_growth_limit_bytes})"
            )

    def _emit_metrics(self) -> None:
        if not self._registry.enabled:
            return
        report = self.report
        self._registry.inc("obs.sanitize.runs")
        self._registry.inc("obs.sanitize.stalls", len(report.stalls))
        for drift in report.stalls:
            self._registry.observe("obs.sanitize.stall_s", drift)
        self._registry.inc(
            "obs.sanitize.leaked_tasks", len(report.leaked_tasks)
        )
        self._registry.inc(
            "obs.sanitize.leaked_segments", len(report.leaked_segments)
        )
        self._registry.set_gauge(
            "obs.sanitize.memory_growth_bytes",
            float(report.memory_growth_bytes),
        )


async def _guarded(
    main: Coroutine[Any, Any, Any], sanitizer: Sanitizer
) -> Any:
    sanitizer.install(asyncio.get_running_loop())
    try:
        return await main
    finally:
        await sanitizer.finalize()


def run_sanitized(
    main: Coroutine[Any, Any, Any],
    *,
    sanitizer: Sanitizer | None = None,
    force: bool = False,
) -> Any:
    """``asyncio.run`` with the sanitizer harness around it.

    With the environment gate off (and ``force`` unset) this *is*
    ``asyncio.run`` — same semantics, zero overhead.  Otherwise the run
    is instrumented and a :class:`SanitizerError` raised on any budget
    violation.  An exception from ``main`` always wins over sanitizer
    verdicts (the crash is the more fundamental signal).
    """
    if not force and sanitizer is None and not sanitize_enabled():
        return asyncio.run(main)
    active = sanitizer if sanitizer is not None else Sanitizer()
    loop = asyncio.new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        try:
            result = loop.run_until_complete(_guarded(main, active))
        finally:
            _cancel_remaining(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
    finally:
        asyncio.set_event_loop(None)
        loop.close()
    report = active.close()
    if not report.ok:
        raise SanitizerError(report.render())
    return result


def _cancel_remaining(loop: asyncio.AbstractEventLoop) -> None:
    """Drain leftover tasks the way ``asyncio.run`` does on exit."""
    pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
    if not pending:
        return
    for task in pending:
        task.cancel()
    loop.run_until_complete(
        asyncio.gather(*pending, return_exceptions=True)
    )
