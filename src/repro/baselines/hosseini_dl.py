"""Cloud deep-learning predictor in the style of Hosseini et al. [11].

The reference streams EEG to the cloud and classifies with a deep
network over spectral representations.  The reimplementation extracts
the full spectral/temporal feature vector
(:mod:`repro.baselines.features`) and trains a two-hidden-layer
perceptron — scaled to what the synthetic corpora support while keeping
the pipeline shape (rich features, multi-layer model, cloud-scale
budget).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TrainingSet, WindowClassifier
from repro.baselines.features import extract_feature_matrix, extract_features
from repro.baselines.mlp import MLP
from repro.errors import EMAPError


class DeepLearningClassifier(WindowClassifier):
    """Spectral features → two-hidden-layer MLP (Hosseini-style)."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (32, 16),
        epochs: int = 400,
        threshold: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not (0.0 < threshold < 1.0):
            raise EMAPError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self._model = MLP(hidden=hidden, epochs=epochs, seed=seed)

    def fit(self, training: TrainingSet) -> "DeepLearningClassifier":
        features = extract_feature_matrix(training.windows)
        self._model.fit(features, training.labels)
        return self

    def predict_window(self, window: np.ndarray) -> bool:
        probability = float(self._model.predict_proba(extract_features(window)))
        return probability >= self.threshold

    def predict_windows(self, windows: np.ndarray) -> np.ndarray:
        features = extract_feature_matrix(np.asarray(windows, dtype=np.float64))
        return self._model.predict_proba(features) >= self.threshold
