"""Minimally supervised self-labelling in the style of Pascual et al. [8].

The reference generates personalised training data by labelling raw
recordings automatically from a tiny expert-labelled seed.  The
reimplementation follows the loop:

1. train an initial model on a small labelled **seed** (default 10 % of
   the provided training set),
2. pseudo-label the remaining windows, keeping only *confident* ones
   (predicted probability far from 0.5),
3. retrain on seed + confident pseudo-labels,
4. repeat for a fixed number of rounds.

The final model is a feature-MLP like the cloud-DL baseline, so the
comparison isolates the *label efficiency* mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TrainingSet, WindowClassifier
from repro.baselines.features import extract_feature_matrix, extract_features
from repro.baselines.mlp import MLP
from repro.errors import EMAPError


class SelfLearningClassifier(WindowClassifier):
    """Seed-and-self-label classifier (Pascual-style)."""

    def __init__(
        self,
        seed_fraction: float = 0.1,
        confidence: float = 0.8,
        rounds: int = 3,
        hidden: tuple[int, ...] = (16,),
        epochs: int = 300,
        seed: int = 0,
    ) -> None:
        if not (0.0 < seed_fraction <= 1.0):
            raise EMAPError(
                f"seed fraction must be in (0, 1], got {seed_fraction}"
            )
        if not (0.5 < confidence < 1.0):
            raise EMAPError(f"confidence must be in (0.5, 1), got {confidence}")
        if rounds < 1:
            raise EMAPError(f"round count must be >= 1, got {rounds}")
        self.seed_fraction = seed_fraction
        self.confidence = confidence
        self.rounds = rounds
        self.hidden = hidden
        self.epochs = epochs
        self.seed = seed
        self._model: MLP | None = None
        self.pseudo_labeled_count = 0

    def fit(self, training: TrainingSet) -> "SelfLearningClassifier":
        features = extract_feature_matrix(training.windows)
        labels = training.labels
        rng = np.random.default_rng(self.seed)

        # Stratified seed: keep both classes represented.
        seed_idx: list[int] = []
        for value in (0, 1):
            pool = np.flatnonzero(labels == value)
            if pool.size == 0:
                raise EMAPError(f"no training windows with label {value}")
            take = max(1, int(round(self.seed_fraction * pool.size)))
            seed_idx.extend(rng.choice(pool, size=take, replace=False))
        seed_mask = np.zeros(len(labels), dtype=bool)
        seed_mask[seed_idx] = True

        train_features = features[seed_mask]
        train_labels = labels[seed_mask].astype(np.float64)
        self.pseudo_labeled_count = 0

        for round_index in range(self.rounds):
            model = MLP(
                hidden=self.hidden, epochs=self.epochs, seed=self.seed + round_index
            )
            model.fit(train_features, train_labels)
            self._model = model

            unlabeled = features[~seed_mask]
            if unlabeled.shape[0] == 0:
                break
            probabilities = model.predict_proba(unlabeled)
            confident = (probabilities >= self.confidence) | (
                probabilities <= 1.0 - self.confidence
            )
            if not confident.any():
                break
            pseudo_labels = (probabilities[confident] >= 0.5).astype(np.float64)
            self.pseudo_labeled_count = int(confident.sum())
            train_features = np.vstack(
                [features[seed_mask], unlabeled[confident]]
            )
            train_labels = np.concatenate(
                [labels[seed_mask].astype(np.float64), pseudo_labels]
            )
        return self

    def predict_window(self, window: np.ndarray) -> bool:
        if self._model is None:
            raise EMAPError("classifier must be fitted first")
        return float(self._model.predict_proba(extract_features(window))) >= 0.5

    def predict_windows(self, windows: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise EMAPError("classifier must be fitted first")
        features = extract_feature_matrix(np.asarray(windows, dtype=np.float64))
        return self._model.predict_proba(features) >= 0.5