"""Shared interface and data plumbing for the baseline classifiers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EMAPError
from repro.signals.types import FRAME_SAMPLES, AnomalyType, Signal


@dataclass
class TrainingSet:
    """Labelled one-second windows for baseline training.

    ``windows`` is (n × frame_samples); ``labels`` is binary
    (1 = anomalous).
    """

    windows: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.windows = np.asarray(self.windows, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.windows.ndim != 2:
            raise EMAPError(
                f"windows must be a 2-D stack, got shape {self.windows.shape}"
            )
        if self.labels.shape != (self.windows.shape[0],):
            raise EMAPError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.windows.shape[0]} windows"
            )
        if not np.isin(self.labels, (0, 1)).all():
            raise EMAPError("labels must be binary (0 or 1)")

    def __len__(self) -> int:
        return self.windows.shape[0]

    @property
    def positive_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.labels.mean())


def windows_from_signals(
    signals: Iterable[Signal],
    frame_samples: int = FRAME_SAMPLES,
    min_span_overlap: float = 0.5,
) -> TrainingSet:
    """Cut labelled windows out of annotated recordings.

    Windows are non-overlapping; a window is labelled anomalous when at
    least ``min_span_overlap`` of it lies inside the recording's
    anomalous spans (or past the label start when spans are absent).
    """
    windows: list[np.ndarray] = []
    labels: list[int] = []
    for sig in signals:
        spans = sig.anomalous_spans
        label_start = sig.effective_label_start
        for start in range(0, len(sig.data) - frame_samples + 1, frame_samples):
            stop = start + frame_samples
            anomalous = 0
            if sig.label.is_anomalous:
                if spans is not None:
                    overlap = sum(
                        max(0, min(stop, s1) - max(start, s0)) for s0, s1 in spans
                    )
                    anomalous = int(overlap >= min_span_overlap * frame_samples)
                elif label_start is not None:
                    overlap = max(0, stop - max(start, label_start))
                    anomalous = int(overlap >= min_span_overlap * frame_samples)
                else:
                    anomalous = 1
            windows.append(sig.data[start:stop])
            labels.append(anomalous)
    if not windows:
        raise EMAPError("no windows could be extracted from the given signals")
    return TrainingSet(windows=np.vstack(windows), labels=np.array(labels))


class WindowClassifier(ABC):
    """Binary anomalous/normal classifier over one-second windows."""

    #: Anomaly types the method applies to; Table I shows N.A. elsewhere.
    supported_anomalies: tuple[AnomalyType, ...] = (AnomalyType.SEIZURE,)

    @abstractmethod
    def fit(self, training: TrainingSet) -> "WindowClassifier":
        """Train on labelled windows; returns self."""

    @abstractmethod
    def predict_window(self, window: np.ndarray) -> bool:
        """Whether one window is anomalous."""

    def predict_windows(self, windows: np.ndarray) -> np.ndarray:
        """Vectorised window predictions (override for speed)."""
        stacked = np.asarray(windows, dtype=np.float64)
        if stacked.ndim != 2:
            raise EMAPError(f"expected a 2-D stack, got shape {stacked.shape}")
        return np.array([self.predict_window(row) for row in stacked], dtype=bool)

    def predict_signal(
        self,
        sig: Signal,
        frame_samples: int = FRAME_SAMPLES,
        min_positive_fraction: float = 0.15,
    ) -> bool:
        """Record-level decision: vote over the record's windows."""
        frames = [frame for frame in sig.frames(frame_samples)]
        if not frames:
            raise EMAPError("recording too short for one window")
        votes = self.predict_windows(np.vstack(frames))
        return bool(votes.mean() >= min_positive_fraction)

    def accuracy(self, testing: TrainingSet) -> float:
        """Window-level classification accuracy on a labelled set."""
        predictions = self.predict_windows(testing.windows).astype(np.int64)
        return float((predictions == testing.labels).mean())


def balanced_subsample(
    training: TrainingSet, per_class: int, seed: int = 0
) -> TrainingSet:
    """Deterministic balanced subsample (with replacement if scarce)."""
    if per_class <= 0:
        raise EMAPError(f"per-class count must be positive, got {per_class}")
    rng = np.random.default_rng(seed)
    picks: list[int] = []
    for value in (0, 1):
        pool = np.flatnonzero(training.labels == value)
        if pool.size == 0:
            raise EMAPError(f"training set has no windows with label {value}")
        replace = pool.size < per_class
        picks.extend(rng.choice(pool, size=per_class, replace=replace))
    order: Sequence[int] = rng.permutation(len(picks))
    chosen = [picks[i] for i in order]
    return TrainingSet(
        windows=training.windows[chosen], labels=training.labels[chosen]
    )
