"""Cross-correlation + classification in the style of Zhang et al. [18].

The reference predicts seizures by cross-correlating EEG windows with
reference patterns and feeding the correlation statistics to a
classifier.  The reimplementation builds class template banks from the
training windows (medoid-like selection: the windows best correlated
with their own class), computes each test window's maximum normalised
correlation against both banks, and thresholds the difference with a
learned margin.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TrainingSet, WindowClassifier
from repro.errors import EMAPError
from repro.signals.metrics import normalized_cross_correlation


def _bank_correlation(window: np.ndarray, bank: np.ndarray) -> float:
    """Maximum normalised correlation of a window against a template bank."""
    return max(
        normalized_cross_correlation(window, template) for template in bank
    )


class CrossCorrelationClassifier(WindowClassifier):
    """Template-bank correlation classifier (Zhang-style)."""

    def __init__(self, templates_per_class: int = 12, seed: int = 0) -> None:
        if templates_per_class <= 0:
            raise EMAPError(
                f"template count must be positive, got {templates_per_class}"
            )
        self.templates_per_class = templates_per_class
        self.seed = seed
        self._banks: dict[int, np.ndarray] = {}
        self._margin = 0.0

    def _select_templates(self, windows: np.ndarray, seed: int) -> np.ndarray:
        """Pick the most self-consistent windows as class templates."""
        if windows.shape[0] <= self.templates_per_class:
            return windows.copy()
        rng = np.random.default_rng(seed)
        pool_size = min(windows.shape[0], 4 * self.templates_per_class)
        pool = windows[rng.choice(windows.shape[0], size=pool_size, replace=False)]
        # Score each pool window by its mean correlation with the pool.
        scores = np.zeros(pool.shape[0])
        for i in range(pool.shape[0]):
            others = [
                normalized_cross_correlation(pool[i], pool[j])
                for j in range(pool.shape[0])
                if j != i
            ]
            scores[i] = float(np.mean(others))
        best = np.argsort(scores)[::-1][: self.templates_per_class]
        return pool[best]

    def fit(self, training: TrainingSet) -> "CrossCorrelationClassifier":
        for value in (0, 1):
            class_windows = training.windows[training.labels == value]
            if class_windows.shape[0] == 0:
                raise EMAPError(f"no training windows with label {value}")
            self._banks[value] = self._select_templates(
                class_windows, seed=self.seed + value
            )
        # Learn the decision margin that best separates training scores.
        scores = np.array(
            [self._score(window) for window in training.windows]
        )
        candidates = np.unique(scores)
        best_margin, best_accuracy = 0.0, -1.0
        for margin in candidates:
            accuracy = float(((scores >= margin) == training.labels).mean())
            if accuracy > best_accuracy:
                best_accuracy = accuracy
                best_margin = float(margin)
        self._margin = best_margin
        return self

    def _score(self, window: np.ndarray) -> float:
        """Anomalous-bank minus normal-bank correlation."""
        if not self._banks:
            raise EMAPError("classifier must be fitted first")
        return _bank_correlation(window, self._banks[1]) - _bank_correlation(
            window, self._banks[0]
        )

    def predict_window(self, window: np.ndarray) -> bool:
        return self._score(window) >= self._margin
