"""State-of-the-art comparators for Table I.

Five simplified but functional reimplementations of the cited methods,
each following the core mechanism of its reference at laptop scale:

* :mod:`repro.baselines.hosseini_dl` — [11] Hosseini et al., cloud
  deep learning: spectral features → multi-layer perceptron.
* :mod:`repro.baselines.samie_iot` — [13] Samie et al., IoT-grade
  predictor: cheap time-domain features → logistic regression.
* :mod:`repro.baselines.burrello_hd` — [7] Burrello et al. (Laelaps):
  hyperdimensional computing over local-binary-pattern symbols.
* :mod:`repro.baselines.pascual_selflearn` — [8] Pascual et al.:
  minimally supervised self-labelling around a small seed set.
* :mod:`repro.baselines.zhang_xcorr` — [18] Zhang et al.:
  cross-correlation against class templates + threshold classification.

All share the :class:`~repro.baselines.base.WindowClassifier` interface
(fit on labelled 256-sample windows, predict per window or per record),
so Table I can sweep them uniformly.  Per the paper, they are
seizure-specific: Table I marks them N.A. for encephalopathy and
stroke.
"""

from repro.baselines.base import TrainingSet, WindowClassifier, windows_from_signals
from repro.baselines.burrello_hd import HyperdimensionalClassifier
from repro.baselines.features import FEATURE_NAMES, extract_features
from repro.baselines.hosseini_dl import DeepLearningClassifier
from repro.baselines.mlp import MLP
from repro.baselines.pascual_selflearn import SelfLearningClassifier
from repro.baselines.samie_iot import IoTSeizurePredictor
from repro.baselines.zhang_xcorr import CrossCorrelationClassifier

__all__ = [
    "CrossCorrelationClassifier",
    "DeepLearningClassifier",
    "FEATURE_NAMES",
    "HyperdimensionalClassifier",
    "IoTSeizurePredictor",
    "MLP",
    "SelfLearningClassifier",
    "TrainingSet",
    "WindowClassifier",
    "extract_features",
    "windows_from_signals",
]
