"""EEG feature extraction shared by the baseline classifiers.

Classic features from the seizure-detection literature, computed per
256-sample (one-second) window:

* **line length** — Σ|x[i] − x[i−1]|, the workhorse of low-power
  detectors,
* **variance** and **RMS**,
* **zero-crossing rate**,
* **band powers** in delta/theta/alpha/beta (Welch periodogram),
* **Hjorth mobility & complexity**,
* **spectral entropy**.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.errors import EMAPError
from repro.signals.generator import EEG_BANDS
from repro.signals.types import BASE_SAMPLE_RATE_HZ

#: Order of the features returned by :func:`extract_features`.
FEATURE_NAMES = (
    "line_length",
    "variance",
    "rms",
    "zero_crossings",
    "power_delta",
    "power_theta",
    "power_alpha",
    "power_beta",
    "hjorth_mobility",
    "hjorth_complexity",
    "spectral_entropy",
)


def line_length(window: np.ndarray) -> float:
    """Total variation of the window."""
    return float(np.abs(np.diff(window)).sum())


def zero_crossing_rate(window: np.ndarray) -> float:
    """Fraction of adjacent sample pairs with a sign change."""
    signs = np.signbit(window - window.mean())
    return float(np.count_nonzero(signs[1:] != signs[:-1]) / max(window.size - 1, 1))


def hjorth_parameters(window: np.ndarray) -> tuple[float, float]:
    """(mobility, complexity) — Hjorth's classic activity descriptors."""
    first = np.diff(window)
    second = np.diff(first)
    var0 = float(np.var(window))
    var1 = float(np.var(first))
    var2 = float(np.var(second))
    if var0 <= 0 or var1 <= 0:
        return 0.0, 0.0
    mobility = np.sqrt(var1 / var0)
    complexity = np.sqrt(var2 / var1) / mobility if mobility > 0 else 0.0
    return float(mobility), float(complexity)


def band_powers(
    window: np.ndarray, sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
) -> dict[str, float]:
    """Welch power in each classical EEG band (µV²)."""
    nperseg = min(window.size, 128)
    freqs, psd = sp_signal.welch(window, fs=sample_rate_hz, nperseg=nperseg)
    powers = {}
    for name, (low, high) in EEG_BANDS.items():
        mask = (freqs >= low) & (freqs < high)
        powers[name] = float(np.trapezoid(psd[mask], freqs[mask])) if mask.any() else 0.0
    return powers


def spectral_entropy(
    window: np.ndarray, sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
) -> float:
    """Shannon entropy of the normalised power spectrum (nats)."""
    nperseg = min(window.size, 128)
    _, psd = sp_signal.welch(window, fs=sample_rate_hz, nperseg=nperseg)
    total = psd.sum()
    if total <= 0:
        return 0.0
    probabilities = psd / total
    positive = probabilities[probabilities > 0]
    return float(-(positive * np.log(positive)).sum())


def extract_features(
    window: np.ndarray, sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
) -> np.ndarray:
    """Full feature vector in :data:`FEATURE_NAMES` order."""
    data = np.asarray(window, dtype=np.float64)
    if data.ndim != 1 or data.size < 8:
        raise EMAPError(
            f"feature extraction needs a 1-D window of >= 8 samples, "
            f"got shape {data.shape}"
        )
    powers = band_powers(data, sample_rate_hz)
    mobility, complexity = hjorth_parameters(data)
    return np.array(
        [
            line_length(data),
            float(np.var(data)),
            float(np.sqrt(np.mean(data**2))),
            zero_crossing_rate(data),
            powers["delta"],
            powers["theta"],
            powers["alpha"],
            powers["beta"],
            mobility,
            complexity,
            spectral_entropy(data, sample_rate_hz),
        ]
    )


def extract_feature_matrix(
    windows: np.ndarray, sample_rate_hz: float = BASE_SAMPLE_RATE_HZ
) -> np.ndarray:
    """Feature matrix (n_windows × n_features) for stacked windows."""
    stacked = np.asarray(windows, dtype=np.float64)
    if stacked.ndim != 2:
        raise EMAPError(f"expected a 2-D window stack, got shape {stacked.shape}")
    return np.vstack([extract_features(row, sample_rate_hz) for row in stacked])
