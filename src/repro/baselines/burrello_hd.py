"""Hyperdimensional seizure detector in the style of Burrello et al. [7].

Laelaps encodes iEEG as local-binary-pattern (LBP) symbols, maps each
symbol to a random bipolar hypervector, binds symbols over a window by
permutation + bundling, and classifies by similarity to per-class
prototype hypervectors.  The reimplementation follows that recipe:

1. 6-bit LBP code per sample (signs of the six preceding first
   differences),
2. static item memory of 64 random ±1 hypervectors (D = 2048),
3. window encoding: position-permuted symbol vectors bundled by
   majority,
4. class prototypes: majority bundle of training-window encodings,
5. prediction: cosine similarity to prototypes, argmax.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TrainingSet, WindowClassifier
from repro.errors import EMAPError

#: LBP code width in bits (Laelaps uses 6-bit codes).
LBP_BITS = 6


def lbp_codes(window: np.ndarray, bits: int = LBP_BITS) -> np.ndarray:
    """Per-sample local binary pattern codes.

    Code *i* packs the signs of the ``bits`` consecutive first
    differences starting at sample *i*.
    """
    data = np.asarray(window, dtype=np.float64)
    if data.ndim != 1 or data.size <= bits:
        raise EMAPError(
            f"LBP needs a 1-D window longer than {bits} samples, got {data.shape}"
        )
    rises = (np.diff(data) > 0).astype(np.int64)
    n_codes = rises.size - bits + 1
    codes = np.zeros(n_codes, dtype=np.int64)
    for bit in range(bits):
        codes |= rises[bit : bit + n_codes] << bit
    return codes


class HyperdimensionalClassifier(WindowClassifier):
    """LBP → hypervector bundling → prototype similarity (Laelaps-style)."""

    def __init__(self, dimension: int = 2048, seed: int = 0) -> None:
        if dimension < 64:
            raise EMAPError(f"HD dimension must be >= 64, got {dimension}")
        self.dimension = dimension
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Static item memory: one bipolar hypervector per LBP symbol.
        self._item_memory = rng.choice(
            (-1, 1), size=(2**LBP_BITS, dimension)
        ).astype(np.int8)
        self._prototypes: dict[int, np.ndarray] = {}

    def encode(self, window: np.ndarray) -> np.ndarray:
        """Bipolar hypervector for one window.

        Symbol vectors are cyclically shifted by their position (the
        permutation binding) and bundled by sign of the sum.
        """
        codes = lbp_codes(window)
        accumulator = np.zeros(self.dimension, dtype=np.int64)
        for position, code in enumerate(codes):
            accumulator += np.roll(self._item_memory[code], position % 32)
        encoded = np.sign(accumulator)
        encoded[encoded == 0] = 1
        return encoded.astype(np.int8)

    def fit(self, training: TrainingSet) -> "HyperdimensionalClassifier":
        for value in (0, 1):
            class_windows = training.windows[training.labels == value]
            if class_windows.shape[0] == 0:
                raise EMAPError(f"no training windows with label {value}")
            bundle = np.zeros(self.dimension, dtype=np.int64)
            for window in class_windows:
                bundle += self.encode(window)
            prototype = np.sign(bundle)
            prototype[prototype == 0] = 1
            self._prototypes[value] = prototype.astype(np.int8)
        return self

    def similarity(self, window: np.ndarray) -> dict[int, float]:
        """Cosine similarity of the window encoding to each prototype."""
        if not self._prototypes:
            raise EMAPError("classifier must be fitted first")
        encoded = self.encode(window).astype(np.float64)
        return {
            value: float(encoded @ prototype) / self.dimension
            for value, prototype in self._prototypes.items()
        }

    def predict_window(self, window: np.ndarray) -> bool:
        scores = self.similarity(window)
        return scores[1] > scores[0]
