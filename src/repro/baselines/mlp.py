"""A small numpy multi-layer perceptron (the "deep" substrate).

Used by the Hosseini-style cloud-DL baseline and the Pascual-style
self-learning baseline.  One or two hidden tanh layers with a sigmoid
output, trained by full-batch gradient descent with momentum on binary
cross-entropy.  Inputs are z-scored with statistics learned at fit
time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EMAPError


class MLP:
    """Binary classifier: z-score → tanh hidden layers → sigmoid."""

    def __init__(
        self,
        hidden: tuple[int, ...] = (16,),
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        epochs: int = 300,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if not hidden or any(size <= 0 for size in hidden):
            raise EMAPError(f"hidden sizes must be positive, got {hidden}")
        if learning_rate <= 0:
            raise EMAPError(f"learning rate must be positive, got {learning_rate}")
        if epochs <= 0:
            raise EMAPError(f"epoch count must be positive, got {epochs}")
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return bool(self._weights)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLP":
        """Train on (n × d) features and binary labels."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise EMAPError(
                f"need (n, d) features with n labels, got {x.shape} / {y.shape}"
            )
        if x.shape[0] < 2:
            raise EMAPError("need at least two training examples")

        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std[self._std == 0] = 1.0
        z = (x - self._mean) / self._std

        rng = np.random.default_rng(self.seed)
        sizes = [x.shape[1], *self.hidden, 1]
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        velocity_w = [np.zeros_like(w) for w in self._weights]
        velocity_b = [np.zeros_like(b) for b in self._biases]

        n = z.shape[0]
        target = y.reshape(-1, 1)
        for _ in range(self.epochs):
            # Forward pass.
            activations = [z]
            for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
                pre = activations[-1] @ w + b
                if layer < len(self._weights) - 1:
                    activations.append(np.tanh(pre))
                else:
                    activations.append(1.0 / (1.0 + np.exp(-pre)))
            # Backward pass (BCE + sigmoid simplifies to (p - y)).
            delta = (activations[-1] - target) / n
            for layer in reversed(range(len(self._weights))):
                grad_w = activations[layer].T @ delta + self.l2 * self._weights[layer]
                grad_b = delta.sum(axis=0)
                velocity_w[layer] = (
                    self.momentum * velocity_w[layer] - self.learning_rate * grad_w
                )
                velocity_b[layer] = (
                    self.momentum * velocity_b[layer] - self.learning_rate * grad_b
                )
                self._weights[layer] += velocity_w[layer]
                self._biases[layer] += velocity_b[layer]
                if layer > 0:
                    delta = (delta @ self._weights[layer].T) * (
                        1.0 - activations[layer] ** 2
                    )
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(anomalous) per row."""
        if not self.is_fitted:
            raise EMAPError("MLP must be fitted before predicting")
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x.reshape(1, -1)
        z = (x - self._mean) / self._std
        out = z
        for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
            pre = out @ w + b
            out = (
                np.tanh(pre)
                if layer < len(self._weights) - 1
                else 1.0 / (1.0 + np.exp(-pre))
            )
        probabilities = out.ravel()
        return probabilities[0] if single else probabilities

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary predictions at the given probability threshold."""
        return np.asarray(self.predict_proba(features) >= threshold)
