"""IoT-grade seizure predictor in the style of Samie et al. [13].

The reference targets severely resource-constrained IoT nodes, so the
reimplementation sticks to features that cost a handful of operations
per sample — line length, variance, zero crossings, and a fast/slow
energy ratio computed from first differences (no FFT) — feeding a
logistic regression trained with plain gradient descent.  This is the
paper's headline comparison in Fig. 10 (~93 % seizure prediction
accuracy).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TrainingSet, WindowClassifier
from repro.errors import EMAPError


def cheap_features(window: np.ndarray) -> np.ndarray:
    """Four O(n) features computable on a microcontroller."""
    data = np.asarray(window, dtype=np.float64)
    if data.ndim != 1 or data.size < 4:
        raise EMAPError(f"need a 1-D window of >= 4 samples, got {data.shape}")
    diff = np.diff(data)
    centered = data - data.mean()
    signs = np.signbit(centered)
    energy = float(np.mean(centered**2))
    return np.array(
        [
            float(np.abs(diff).sum()),                       # line length
            energy,                                           # variance
            float(np.count_nonzero(signs[1:] != signs[:-1])), # zero crossings
            float(np.mean(diff**2)) / (energy + 1e-12),       # fast/slow ratio
        ]
    )


class IoTSeizurePredictor(WindowClassifier):
    """Cheap-feature logistic regression (Samie-style)."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 400,
        l2: float = 1e-4,
        threshold: float = 0.5,
    ) -> None:
        if learning_rate <= 0:
            raise EMAPError(f"learning rate must be positive, got {learning_rate}")
        if epochs <= 0:
            raise EMAPError(f"epoch count must be positive, got {epochs}")
        if not (0.0 < threshold < 1.0):
            raise EMAPError(f"threshold must be in (0, 1), got {threshold}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.threshold = threshold
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, training: TrainingSet) -> "IoTSeizurePredictor":
        features = np.vstack([cheap_features(w) for w in training.windows])
        labels = training.labels.astype(np.float64)
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std == 0] = 1.0
        z = (features - self._mean) / self._std

        weights = np.zeros(z.shape[1])
        bias = 0.0
        n = z.shape[0]
        for _ in range(self.epochs):
            logits = z @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = probabilities - labels
            grad_w = z.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self._weights = weights
        self._bias = bias
        return self

    def decision_value(self, window: np.ndarray) -> float:
        """P(anomalous) for one window."""
        if self._weights is None:
            raise EMAPError("predictor must be fitted first")
        z = (cheap_features(window) - self._mean) / self._std
        logit = float(z @ self._weights + self._bias)
        return 1.0 / (1.0 + np.exp(-logit))

    def predict_window(self, window: np.ndarray) -> bool:
        return self.decision_value(window) >= self.threshold
