"""Command-line interface: run any paper experiment from the shell.

::

    emap list
    emap fig2  [--mdb-scale 0.3] [--seed 0]
    emap fig4
    emap fig7a / fig7b
    emap fig8a / fig8b
    emap fig9
    emap fig10  [--batches 2 --batch-size 5]
    emap fig11  [--inputs 20]
    emap table1 [--batches 2 --batch-size 5]
    emap monitor --kind seizure --duration 60
    emap obs [--json] [--duration 40] [--profile]

Every experiment prints the same rows/series the paper's corresponding
table or figure reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable

from repro.version import PAPER, __version__

if TYPE_CHECKING:  # heavy imports stay deferred at runtime
    from repro.eval.experiments.common import ExperimentFixture
    from repro.signals.types import Signal

_EXPERIMENTS: dict[str, str] = {
    "fig2": "PA vs tracking iteration (motivational analysis)",
    "fig4": "transmission times per communication platform",
    "fig7a": "step-size (alpha) sweep",
    "fig7b": "search exploration-time scaling, exhaustive vs Algorithm 1",
    "fig8a": "delta / delta_A threshold equivalence",
    "fig8b": "edge tracking cost, cross-correlation vs area",
    "fig9": "closed-loop timing analysis",
    "fig10": "seizure prediction accuracy per batch and horizon",
    "fig11": "search quality, Algorithm 1 vs exhaustive",
    "table1": "prediction accuracy for all anomalies + baselines",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="emap",
        description=f"Reproduction harness for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name, help_text in _EXPERIMENTS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--mdb-scale", type=float, default=0.3)
        sub.add_argument("--seed", type=int, default=0)
        if name in ("fig10", "table1"):
            sub.add_argument("--batches", type=int, default=2)
            sub.add_argument("--batch-size", type=int, default=5)
            sub.add_argument("--no-baselines", action="store_true")
        if name == "fig11":
            sub.add_argument("--inputs", type=int, default=20)

    monitor = subparsers.add_parser(
        "monitor", help="run one closed-loop monitoring session"
    )
    monitor.add_argument(
        "--kind",
        choices=["none", "seizure", "encephalopathy", "stroke"],
        default="seizure",
    )
    monitor.add_argument("--duration", type=float, default=60.0)
    monitor.add_argument("--mdb-scale", type=float, default=0.3)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--workers",
        type=int,
        default=1,
        help="search worker processes (>1 uses the shared-memory pool)",
    )
    monitor.add_argument(
        "--engine",
        choices=["scalar", "plane"],
        default="scalar",
        help="edge tracking engine (plane = compiled set, fused stepping)",
    )

    obs_cmd = subparsers.add_parser(
        "obs",
        help="run an end-to-end streaming session with observability on "
        "and report the collected metrics",
    )
    obs_cmd.add_argument(
        "--json", action="store_true", help="emit the raw metrics document"
    )
    obs_cmd.add_argument(
        "--profile",
        action="store_true",
        help="also capture a cProfile of the streaming run",
    )
    obs_cmd.add_argument(
        "--kind",
        choices=["none", "seizure", "encephalopathy", "stroke"],
        default="seizure",
    )
    obs_cmd.add_argument("--duration", type=float, default=40.0)
    obs_cmd.add_argument("--mdb-scale", type=float, default=0.2)
    obs_cmd.add_argument("--seed", type=int, default=0)
    obs_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="search worker processes (>1 uses the shared-memory pool)",
    )
    obs_cmd.add_argument(
        "--engine",
        choices=["scalar", "plane"],
        default="scalar",
        help="edge tracking engine (plane = compiled set, fused stepping)",
    )
    obs_cmd.add_argument(
        "--chunk-samples",
        type=int,
        default=96,
        help="raw samples per streaming push (exercises partial frames)",
    )
    return parser


def _fixture(args: argparse.Namespace) -> ExperimentFixture:
    from repro.eval.experiments.common import build_fixture

    return build_fixture(mdb_scale=args.mdb_scale, seed=args.seed)


def _cmd_list(_args: argparse.Namespace) -> str:
    lines = [f"{name:<8} {description}" for name, description in _EXPERIMENTS.items()]
    return "\n".join(lines)


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig2_motivation

    return fig2_motivation.run(_fixture(args)).report()


def _cmd_fig4(_args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig4_transmission

    return fig4_transmission.run().report()


def _cmd_fig7a(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig7_alpha_sweep

    return fig7_alpha_sweep.run_alpha_sweep(_fixture(args)).report()


def _cmd_fig7b(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig7_alpha_sweep

    return fig7_alpha_sweep.run_scaling(
        _fixture(args), db_sizes=(500, 1000, 2000, 4000)
    ).report()


def _cmd_fig8a(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig8_threshold

    return fig8_threshold.run_threshold_equivalence(_fixture(args)).report()


def _cmd_fig8b(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig8_threshold

    return fig8_threshold.run_tracking_cost(_fixture(args)).report()


def _cmd_fig9(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig9_timeline

    result = fig9_timeline.run(_fixture(args))
    return result.report() + "\n\ntimeline (first events):\n" + "\n".join(
        result.timeline[:25]
    )


def _cmd_fig10(args: argparse.Namespace) -> str:
    from repro.eval.batches import BatchSpec
    from repro.eval.experiments import fig10_seizure_accuracy

    shape = BatchSpec(n_batches=args.batches, batch_size=args.batch_size)
    result = fig10_seizure_accuracy.run(
        _fixture(args),
        batch_spec=shape,
        seed=args.seed,
        with_baseline=not args.no_baselines,
    )
    return result.report()


def _cmd_fig11(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig11_search_quality

    return fig11_search_quality.run(
        _fixture(args), n_inputs_per_class=args.inputs, seed=args.seed
    ).report()


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.eval.batches import BatchSpec
    from repro.eval.experiments import table1_accuracy

    shape = BatchSpec(n_batches=args.batches, batch_size=args.batch_size)
    result = table1_accuracy.run(
        _fixture(args),
        batch_spec=shape,
        seed=args.seed,
        with_baselines=not args.no_baselines,
    )
    return result.report()


def _cmd_monitor(args: argparse.Namespace) -> str:
    from repro.config import PipelineConfig, build_pipeline
    from repro.edge.tracker import TrackerConfig
    from repro.signals.anomalies import AnomalySpec, make_anomalous_signal
    from repro.signals.generator import EEGGenerator
    from repro.signals.types import AnomalyType

    kind = AnomalyType(args.kind)
    generator = EEGGenerator(seed=args.seed + 1000)
    if kind.is_anomalous:
        if kind is AnomalyType.SEIZURE:
            spec = AnomalySpec(
                kind=kind,
                onset_s=0.8 * args.duration,
                buildup_s=0.7 * args.duration,
            )
        else:
            spec = AnomalySpec(kind=kind)
        recording = make_anomalous_signal(generator, args.duration, spec)
    else:
        recording = generator.record(args.duration)
    with build_pipeline(
        PipelineConfig(
            mdb_scale=args.mdb_scale,
            seed=args.seed,
            with_artifacts=False,
            search_workers=args.workers,
            tracker=TrackerConfig(engine=args.engine),
        )
    ) as pipeline:
        session = pipeline.framework.run(recording)
        lines = [
            f"input: {args.kind}, {args.duration:.0f}s "
            f"(MDB: {len(pipeline.mdb)} signal-sets, "
            f"{args.workers} search worker(s))",
            f"iterations: {session.iterations}, cloud calls: {session.cloud_calls}",
            f"initial latency: {session.initial_latency_s:.2f}s",
            f"peak anomaly probability: {session.peak_probability:.2f}",
            f"anomaly predicted: {session.final_prediction}",
            "PA series (every 5th): "
            + " ".join(f"{p:.2f}" for p in session.pa_series[::5]),
        ]
    return "\n".join(lines)


def _obs_recording(args: argparse.Namespace) -> Signal:
    """An evaluation recording for the observability session."""
    from repro.signals.anomalies import AnomalySpec, make_anomalous_signal
    from repro.signals.generator import EEGGenerator
    from repro.signals.types import AnomalyType

    kind = AnomalyType(args.kind)
    generator = EEGGenerator(seed=args.seed + 1000)
    if not kind.is_anomalous:
        return generator.record(args.duration)
    if kind is AnomalyType.SEIZURE:
        spec = AnomalySpec(
            kind=kind,
            onset_s=0.8 * args.duration,
            buildup_s=0.7 * args.duration,
        )
    else:
        spec = AnomalySpec(kind=kind)
    return make_anomalous_signal(generator, args.duration, spec)


def _cmd_obs(args: argparse.Namespace) -> str:
    """End-to-end streaming run with the observability layer enabled."""
    from repro import obs
    from repro.config import PipelineConfig, build_pipeline
    from repro.edge.tracker import TrackerConfig
    from repro.obs.profiling import profile_block
    from repro.runtime.streaming import StreamingConfig, StreamingMonitor

    obs.reset()
    obs.enable(profiling=args.profile)
    with build_pipeline(
        PipelineConfig(
            mdb_scale=args.mdb_scale,
            seed=args.seed,
            with_artifacts=False,
            search_workers=args.workers,
        )
    ) as pipeline:
        recording = _obs_recording(args)
        monitor = StreamingMonitor(
            pipeline.cloud,
            StreamingConfig(tracker=TrackerConfig(engine=args.engine)),
        )
        chunk = max(1, args.chunk_samples)
        with profile_block("obs.streaming_run", obs.profiles()):
            for start in range(0, len(recording.data), chunk):
                monitor.push(recording.data[start : start + chunk])
        document = obs.export()
    if args.json:
        import json

        return json.dumps(document, indent=2)
    header = (
        f"streaming session: {args.kind}, {args.duration:.0f}s, "
        f"{len(monitor.updates)} frames, {monitor.cloud_calls} cloud calls "
        f"(MDB: {len(pipeline.mdb)} signal-sets)\n"
    )
    return header + obs.format_report(document)


_COMMANDS: dict[str, Callable] = {
    "list": _cmd_list,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig7a": _cmd_fig7a,
    "fig7b": _cmd_fig7b,
    "fig8a": _cmd_fig8a,
    "fig8b": _cmd_fig8b,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "table1": _cmd_table1,
    "monitor": _cmd_monitor,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
