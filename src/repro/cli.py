"""Command-line interface: run any paper experiment from the shell.

::

    emap list
    emap fig2  [--mdb-scale 0.3] [--seed 0]
    emap fig4
    emap fig7a / fig7b
    emap fig8a / fig8b
    emap fig9
    emap fig10  [--batches 2 --batch-size 5]
    emap fig11  [--inputs 20]
    emap table1 [--batches 2 --batch-size 5]
    emap monitor --kind seizure --duration 60
    emap obs [--json] [--duration 40] [--profile]
    emap serve [--sessions 200] [--tenants 8] [--fault-tenant tenant-0]
    emap serve --soak

Every experiment prints the same rows/series the paper's corresponding
table or figure reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable

from repro.version import PAPER, __version__

if TYPE_CHECKING:  # heavy imports stay deferred at runtime
    from repro.eval.experiments.common import ExperimentFixture
    from repro.signals.types import Signal

_EXPERIMENTS: dict[str, str] = {
    "fig2": "PA vs tracking iteration (motivational analysis)",
    "fig4": "transmission times per communication platform",
    "fig7a": "step-size (alpha) sweep",
    "fig7b": "search exploration-time scaling, exhaustive vs Algorithm 1",
    "fig8a": "delta / delta_A threshold equivalence",
    "fig8b": "edge tracking cost, cross-correlation vs area",
    "fig9": "closed-loop timing analysis",
    "fig10": "seizure prediction accuracy per batch and horizon",
    "fig11": "search quality, Algorithm 1 vs exhaustive",
    "table1": "prediction accuracy for all anomalies + baselines",
}


def _add_two_stage(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--two-stage",
        choices=["off", "lossless", "fast"],
        default="off",
        help="coarse-then-exact cloud search (lossless = provable "
        "pruning, bit-identical; fast = tunable candidate cut)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="emap",
        description=f"Reproduction harness for: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    for name, help_text in _EXPERIMENTS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--mdb-scale", type=float, default=0.3)
        sub.add_argument("--seed", type=int, default=0)
        if name in ("fig10", "table1"):
            sub.add_argument("--batches", type=int, default=2)
            sub.add_argument("--batch-size", type=int, default=5)
            sub.add_argument("--no-baselines", action="store_true")
        if name == "fig11":
            sub.add_argument("--inputs", type=int, default=20)
            _add_two_stage(sub)

    monitor = subparsers.add_parser(
        "monitor", help="run one closed-loop monitoring session"
    )
    monitor.add_argument(
        "--kind",
        choices=["none", "seizure", "encephalopathy", "stroke"],
        default="seizure",
    )
    monitor.add_argument("--duration", type=float, default=60.0)
    monitor.add_argument("--mdb-scale", type=float, default=0.3)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--workers",
        type=int,
        default=1,
        help="search worker processes (>1 uses the shared-memory pool)",
    )
    monitor.add_argument(
        "--engine",
        choices=["scalar", "plane"],
        default="scalar",
        help="edge tracking engine (plane = compiled set, fused stepping)",
    )
    _add_two_stage(monitor)

    obs_cmd = subparsers.add_parser(
        "obs",
        help="run an end-to-end streaming session with observability on "
        "and report the collected metrics",
    )
    obs_cmd.add_argument(
        "--json", action="store_true", help="emit the raw metrics document"
    )
    obs_cmd.add_argument(
        "--profile",
        action="store_true",
        help="also capture a cProfile of the streaming run",
    )
    obs_cmd.add_argument(
        "--kind",
        choices=["none", "seizure", "encephalopathy", "stroke"],
        default="seizure",
    )
    obs_cmd.add_argument("--duration", type=float, default=40.0)
    obs_cmd.add_argument("--mdb-scale", type=float, default=0.2)
    obs_cmd.add_argument("--seed", type=int, default=0)
    obs_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="search worker processes (>1 uses the shared-memory pool)",
    )
    obs_cmd.add_argument(
        "--engine",
        choices=["scalar", "plane"],
        default="scalar",
        help="edge tracking engine (plane = compiled set, fused stepping)",
    )
    obs_cmd.add_argument(
        "--chunk-samples",
        type=int,
        default=96,
        help="raw samples per streaming push (exercises partial frames)",
    )
    _add_two_stage(obs_cmd)

    serve = subparsers.add_parser(
        "serve",
        help="drive a simulated session fleet through the multi-tenant "
        "serving gateway (coalesced batch search)",
    )
    serve.add_argument("--sessions", type=int, default=200)
    serve.add_argument("--tenants", type=int, default=8)
    serve.add_argument(
        "--mean-requests",
        type=float,
        default=4.0,
        help="mean requests per session (seeded Poisson, minimum 1)",
    )
    serve.add_argument(
        "--think-time",
        type=float,
        default=1.0,
        help="simulated seconds between a session's requests",
    )
    serve.add_argument(
        "--horizon",
        type=float,
        default=5.0,
        help="sessions arrive uniformly over this many simulated seconds",
    )
    serve.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="wall seconds per simulated second (0 = as fast as possible)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="largest coalesced search batch the gateway dispatches",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="per-tenant queue bound (admission control rejects beyond it)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=2048,
        help="gateway-wide pending bound (global backpressure)",
    )
    serve.add_argument(
        "--edge-steps",
        type=int,
        default=0,
        help="edge tracking iterations per successful search (fused "
        "fleet stepping; 0 = cloud-only simulation)",
    )
    serve.add_argument("--frames", type=int, default=32)
    serve.add_argument("--mdb-scale", type=float, default=0.15)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--fault-tenant",
        default=None,
        help="inject a generated fault plan into this tenant only",
    )
    serve.add_argument("--fault-rate", type=float, default=0.35)
    serve.add_argument("--fault-seed", type=int, default=13)
    serve.add_argument(
        "--p99-budget",
        type=float,
        default=None,
        help="soak gate: wall-clock p99 latency ceiling in seconds "
        "(default: the SoakConfig tripwire)",
    )
    serve.add_argument(
        "--soak",
        action="store_true",
        help="run the soak health gate (chaos on one tenant, hard "
        "invariants on the outcome); exit code 1 on any violation",
    )
    serve.add_argument(
        "--obs",
        action="store_true",
        help="append the collected gateway.* metrics report",
    )
    serve.add_argument(
        "--shard-slices",
        type=int,
        default=None,
        help="slices per compiled plane shard (default: the sharded "
        "plane's built-in width); smaller shards make online inserts "
        "cheaper to adopt, larger ones amortise per-shard overheads",
    )
    _add_two_stage(serve)
    return parser


def _fixture(args: argparse.Namespace) -> ExperimentFixture:
    from repro.eval.experiments.common import build_fixture

    return build_fixture(mdb_scale=args.mdb_scale, seed=args.seed)


def _cmd_list(_args: argparse.Namespace) -> str:
    lines = [f"{name:<8} {description}" for name, description in _EXPERIMENTS.items()]
    return "\n".join(lines)


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig2_motivation

    return fig2_motivation.run(_fixture(args)).report()


def _cmd_fig4(_args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig4_transmission

    return fig4_transmission.run().report()


def _cmd_fig7a(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig7_alpha_sweep

    return fig7_alpha_sweep.run_alpha_sweep(_fixture(args)).report()


def _cmd_fig7b(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig7_alpha_sweep

    return fig7_alpha_sweep.run_scaling(
        _fixture(args), db_sizes=(500, 1000, 2000, 4000)
    ).report()


def _cmd_fig8a(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig8_threshold

    return fig8_threshold.run_threshold_equivalence(_fixture(args)).report()


def _cmd_fig8b(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig8_threshold

    return fig8_threshold.run_tracking_cost(_fixture(args)).report()


def _cmd_fig9(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig9_timeline

    result = fig9_timeline.run(_fixture(args))
    return result.report() + "\n\ntimeline (first events):\n" + "\n".join(
        result.timeline[:25]
    )


def _cmd_fig10(args: argparse.Namespace) -> str:
    from repro.eval.batches import BatchSpec
    from repro.eval.experiments import fig10_seizure_accuracy

    shape = BatchSpec(n_batches=args.batches, batch_size=args.batch_size)
    result = fig10_seizure_accuracy.run(
        _fixture(args),
        batch_spec=shape,
        seed=args.seed,
        with_baseline=not args.no_baselines,
    )
    return result.report()


def _cmd_fig11(args: argparse.Namespace) -> str:
    from repro.eval.experiments import fig11_search_quality

    return fig11_search_quality.run(
        _fixture(args),
        n_inputs_per_class=args.inputs,
        seed=args.seed,
        two_stage=args.two_stage,
    ).report()


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.eval.batches import BatchSpec
    from repro.eval.experiments import table1_accuracy

    shape = BatchSpec(n_batches=args.batches, batch_size=args.batch_size)
    result = table1_accuracy.run(
        _fixture(args),
        batch_spec=shape,
        seed=args.seed,
        with_baselines=not args.no_baselines,
    )
    return result.report()


def _cmd_monitor(args: argparse.Namespace) -> str:
    from repro.cloud.search import SearchConfig
    from repro.config import PipelineConfig, build_pipeline
    from repro.edge.tracker import TrackerConfig
    from repro.signals.anomalies import AnomalySpec, make_anomalous_signal
    from repro.signals.generator import EEGGenerator
    from repro.signals.types import AnomalyType

    kind = AnomalyType(args.kind)
    generator = EEGGenerator(seed=args.seed + 1000)
    if kind.is_anomalous:
        if kind is AnomalyType.SEIZURE:
            spec = AnomalySpec(
                kind=kind,
                onset_s=0.8 * args.duration,
                buildup_s=0.7 * args.duration,
            )
        else:
            spec = AnomalySpec(kind=kind)
        recording = make_anomalous_signal(generator, args.duration, spec)
    else:
        recording = generator.record(args.duration)
    with build_pipeline(
        PipelineConfig(
            mdb_scale=args.mdb_scale,
            seed=args.seed,
            with_artifacts=False,
            search=SearchConfig(two_stage=args.two_stage),
            search_workers=args.workers,
            tracker=TrackerConfig(engine=args.engine),
        )
    ) as pipeline:
        session = pipeline.framework.run(recording)
        lines = [
            f"input: {args.kind}, {args.duration:.0f}s "
            f"(MDB: {len(pipeline.mdb)} signal-sets, "
            f"{args.workers} search worker(s))",
            f"iterations: {session.iterations}, cloud calls: {session.cloud_calls}",
            f"initial latency: {session.initial_latency_s:.2f}s",
            f"peak anomaly probability: {session.peak_probability:.2f}",
            f"anomaly predicted: {session.final_prediction}",
            "PA series (every 5th): "
            + " ".join(f"{p:.2f}" for p in session.pa_series[::5]),
        ]
    return "\n".join(lines)


def _obs_recording(args: argparse.Namespace) -> Signal:
    """An evaluation recording for the observability session."""
    from repro.signals.anomalies import AnomalySpec, make_anomalous_signal
    from repro.signals.generator import EEGGenerator
    from repro.signals.types import AnomalyType

    kind = AnomalyType(args.kind)
    generator = EEGGenerator(seed=args.seed + 1000)
    if not kind.is_anomalous:
        return generator.record(args.duration)
    if kind is AnomalyType.SEIZURE:
        spec = AnomalySpec(
            kind=kind,
            onset_s=0.8 * args.duration,
            buildup_s=0.7 * args.duration,
        )
    else:
        spec = AnomalySpec(kind=kind)
    return make_anomalous_signal(generator, args.duration, spec)


def _cmd_obs(args: argparse.Namespace) -> str:
    """End-to-end streaming run with the observability layer enabled."""
    from repro import obs
    from repro.cloud.search import SearchConfig
    from repro.config import PipelineConfig, build_pipeline
    from repro.edge.tracker import TrackerConfig
    from repro.obs.profiling import profile_block
    from repro.runtime.streaming import StreamingConfig, StreamingMonitor

    obs.reset()
    obs.enable(profiling=args.profile)
    with build_pipeline(
        PipelineConfig(
            mdb_scale=args.mdb_scale,
            seed=args.seed,
            with_artifacts=False,
            search=SearchConfig(two_stage=args.two_stage),
            search_workers=args.workers,
        )
    ) as pipeline:
        recording = _obs_recording(args)
        monitor = StreamingMonitor(
            pipeline.cloud,
            StreamingConfig(tracker=TrackerConfig(engine=args.engine)),
        )
        chunk = max(1, args.chunk_samples)
        with profile_block("obs.streaming_run", obs.profiles()):
            for start in range(0, len(recording.data), chunk):
                monitor.push(recording.data[start : start + chunk])
        document = obs.export()
    if args.json:
        import json

        return json.dumps(document, indent=2)
    header = (
        f"streaming session: {args.kind}, {args.duration:.0f}s, "
        f"{len(monitor.updates)} frames, {monitor.cloud_calls} cloud calls "
        f"(MDB: {len(pipeline.mdb)} signal-sets)\n"
    )
    return header + obs.format_report(document)


def _cmd_serve(args: argparse.Namespace) -> str | tuple[str, int]:
    """Fleet (or soak-gate) run through the serving gateway."""
    from repro import obs
    from repro.gateway import FleetConfig, GatewayConfig

    obs.reset()
    obs.enable()
    fleet_config = FleetConfig(
        n_sessions=args.sessions,
        n_tenants=args.tenants,
        mean_requests_per_session=args.mean_requests,
        think_time_s=args.think_time,
        arrival_horizon_s=args.horizon,
        time_scale=args.time_scale,
        edge_steps_per_request=args.edge_steps,
        seed=args.seed,
    )
    gateway_config = GatewayConfig(
        max_batch=args.max_batch,
        max_queue_per_tenant=args.max_queue,
        max_pending=args.max_pending,
    )
    if args.soak:
        from repro.gateway import SoakConfig, run_soak

        overrides = (
            {} if args.p99_budget is None
            else {"max_p99_latency_s": args.p99_budget}
        )
        soak = run_soak(
            SoakConfig(
                mdb_scale=args.mdb_scale,
                fleet=fleet_config,
                gateway=gateway_config,
                fault_seed=args.fault_seed,
                fault_rate=args.fault_rate,
                n_frames=args.frames,
                seed=args.seed,
                two_stage=args.two_stage,
                **overrides,
            )
        )
        output = soak.report()
        if args.obs:
            output += "\n\n" + obs.format_report(obs.export())
        return output if soak.passed else (output, 1)

    from repro.cloud.search import SearchConfig, SlidingWindowSearch
    from repro.cloud.server import CloudServer
    from repro.eval.experiments.common import build_fixture
    from repro.gateway import build_frame_pool, run_fleet

    from repro.cloud.shards import DEFAULT_SHARD_SLICES

    fixture = build_fixture(mdb_scale=args.mdb_scale, seed=args.seed)
    server = CloudServer(
        fixture.slices,
        search=SlidingWindowSearch(
            SearchConfig(two_stage=args.two_stage), precompute=True
        ),
        shard_slices=(
            args.shard_slices
            if args.shard_slices is not None
            else DEFAULT_SHARD_SLICES
        ),
    )
    try:
        frames = build_frame_pool(
            fixture.slices, n_frames=args.frames, seed=args.seed
        )
        tenant_plans = None
        if args.fault_tenant is not None:
            from repro.faults.plan import FaultPlan

            per_tenant_calls = (
                args.sessions / max(1, args.tenants) * args.mean_requests
            )
            tenant_plans = {
                args.fault_tenant: FaultPlan.generate(
                    seed=args.fault_seed,
                    horizon_calls=max(10, int(per_tenant_calls * 4)),
                    fault_rate=args.fault_rate,
                )
            }
        report = run_fleet(
            server, frames, fleet_config, gateway_config, tenant_plans
        )
    finally:
        server.close()
    header = (
        f"fleet: {args.sessions} sessions over {args.tenants} tenant(s) "
        f"(MDB: {len(fixture.mdb)} signal-sets, max batch {args.max_batch})\n"
    )
    output = header + report.report()
    if args.obs:
        output += "\n\n" + obs.format_report(obs.export())
    return output


_COMMANDS: dict[str, Callable] = {
    "list": _cmd_list,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig7a": _cmd_fig7a,
    "fig7b": _cmd_fig7b,
    "fig8a": _cmd_fig8a,
    "fig8b": _cmd_fig8b,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "table1": _cmd_table1,
    "monitor": _cmd_monitor,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Commands return either the report text (exit 0) or a
    ``(text, exit_code)`` pair — ``emap serve --soak`` uses the latter
    so CI fails on a violated soak gate.
    """
    args = _build_parser().parse_args(argv)
    output = _COMMANDS[args.command](args)
    if isinstance(output, tuple):
        text, code = output
        print(text)
        return code
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
